package shard

import (
	"context"
	"io"
	"net/http"
	"strings"

	"smoke/internal/serr"
	"smoke/internal/sql"
)

// queryBody is the slice of the query request the coordinator itself needs
// (the raw body is forwarded to the shards byte-for-byte, so fields the
// coordinator does not read still reach them unchanged).
type queryBody struct {
	SQL      string `json:"sql"`
	Capture  string `json:"capture"`
	Strategy string `json:"strategy"`
}

// resolvedStrategy mirrors core.resolveStrategy's label for a query request:
// an explicit strategy wins, otherwise capture "none" resolves lazy and every
// capturing mode resolves eager. "auto" stays "auto" — its resolution reads
// per-node runtime counters the coordinator cannot see, which is exactly why
// traces whose row order depends on it are fenced rather than guessed.
func resolvedStrategy(capture, strategy string) string {
	switch strings.ToLower(strategy) {
	case "eager", "lazy", "hybrid", "auto":
		return strings.ToLower(strategy)
	}
	if strings.ToLower(capture) == "none" {
		return "lazy"
	}
	return "eager"
}

// readBody buffers a JSON request body for re-sending to shards.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, serr.New(serr.Invalid, "shard: read body: %v", err)
	}
	return body, nil
}

// planQuery parses the statement and decides its route. Single-shard
// deployments always proxy — one shard holds everything, so shards=1 has
// exact single-node behavior with none of the scatter fences.
func (c *Coordinator) planQuery(sqlText string) (*analysis, error) {
	if strings.TrimSpace(sqlText) == "" {
		return nil, serr.New(serr.Invalid, "server: request has no sql")
	}
	if len(c.nodes) == 1 {
		return &analysis{route: routeProxy}, nil
	}
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		// EXPLAIN renders a plan instead of executing; route it to one shard
		// (over a sharded table the plan is the shard-local slice's).
		return &analysis{route: routeProxy}, nil
	}
	return c.analyze(st, c.snapshotTables())
}

// handleQuery is stateless execution: proxy when every input is replicated
// (any shard's answer is the answer; the ring spreads statements across
// shards), scatter + two-phase merge when the statement reads the sharded
// table.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req queryBody
	if jerr := unmarshalNumber(body, &req); jerr != nil {
		writeError(w, serr.New(serr.Invalid, "server: bad request body: %v", jerr))
		return
	}
	if err := c.enter(); err != nil {
		writeError(w, err)
		return
	}
	defer c.exit()
	a, err := c.planQuery(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	if a.route == routeProxy {
		c.proxied.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
		defer cancel()
		res, err := c.nodes[c.ring.owner(req.SQL)].invoke(ctx, http.MethodPost, "/v1/query", body, "application/json")
		if err != nil {
			c.shardTimeouts.Add(1)
			writeError(w, err)
			return
		}
		writeShardReply(w, res)
		return
	}

	parts, err := c.scatter(r.Context(), c.allShards(), func(int) (string, string, []byte) {
		return http.MethodPost, "/v1/query", body
	})
	if err != nil {
		writeError(w, err)
		return
	}
	merged, _, err := mergeGrouped(parts, a.nKeys, a.aggs)
	if err != nil {
		writeError(w, err)
		return
	}
	// Cached is per-node observability; a merged reply is "cached" only when
	// every shard answered from its cache.
	merged.Cached = true
	for _, p := range parts {
		if !p.Cached {
			merged.Cached = false
			break
		}
	}
	c.mergedQueries.Add(1)
	writeJSON(w, http.StatusOK, merged)
}

// handleRunResult executes and retains a named result. Proxy-routed
// statements retain whole on the session's home shard; scattered statements
// retain a partial capture on EVERY shard, and the coordinator remembers the
// merged output plus the gather map so traces can translate seeds.
func (c *Coordinator) handleRunResult(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	sess, err := c.lookupSession(id)
	if err != nil {
		writeError(w, err)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req queryBody
	if jerr := unmarshalNumber(body, &req); jerr != nil {
		writeError(w, serr.New(serr.Invalid, "server: bad request body: %v", jerr))
		return
	}
	if err := c.enter(); err != nil {
		writeError(w, err)
		return
	}
	defer c.exit()
	a, err := c.planQuery(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	if a.route == routeProxy {
		c.proxied.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
		defer cancel()
		path := "/v1/sessions/" + sess.shardIDs[sess.home] + "/results/" + name
		res, err := c.nodes[sess.home].invoke(ctx, http.MethodPost, path, body, "application/json")
		if err != nil {
			c.shardTimeouts.Add(1)
			writeError(w, err)
			return
		}
		if res.ok() {
			sess.setPlacement(name, &placement{scattered: false})
		}
		writeShardReply(w, res)
		return
	}

	parts, err := c.scatter(r.Context(), c.allShards(), func(s int) (string, string, []byte) {
		return http.MethodPost, "/v1/sessions/" + sess.shardIDs[s] + "/results/" + name, body
	})
	if err != nil {
		writeError(w, err)
		return
	}
	merged, gm, err := mergeGrouped(parts, a.nKeys, a.aggs)
	if err != nil {
		writeError(w, err)
		return
	}
	c.mergedQueries.Add(1)
	sess.setPlacement(name, &placement{
		scattered: true,
		table:     a.sharded,
		nKeys:     a.nKeys,
		merged:    merged,
		gm:        gm,
		tbl:       a.tbl,
		keys:      a.keys,
		scanPreds: a.scanPreds,
		scanOK:    a.scanOK,
		strategy:  resolvedStrategy(req.Capture, req.Strategy),
	})
	merged.Retained = name
	writeJSON(w, http.StatusOK, merged)
}

// handleGetResult re-renders a retained result. Scattered results render
// from the coordinator's merged copy (shape-identical to a single node's
// GET: rows only, none of the run-time annotations); proxy results forward.
func (c *Coordinator) handleGetResult(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	sess, err := c.lookupSession(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := c.enter(); err != nil {
		writeError(w, err)
		return
	}
	defer c.exit()
	p := sess.placementOf(name)
	if p != nil && p.scattered {
		writeJSON(w, http.StatusOK, &wireResult{
			Columns: p.merged.Columns,
			Types:   p.merged.Types,
			Rows:    p.merged.Rows,
			N:       p.merged.N,
		})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	path := "/v1/sessions/" + sess.shardIDs[sess.home] + "/results/" + name
	res, err := c.nodes[sess.home].invoke(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		c.shardTimeouts.Add(1)
		writeError(w, err)
		return
	}
	writeShardReply(w, res)
}
