// Package shard is smoked's horizontal scale-out tier: a coordinator that
// partitions relations by rid range across N in-process shard nodes — each a
// full engine behind the standard server handler stack — and speaks the
// unchanged smoked HTTP API by scattering requests and gathering the partial
// replies. Clients cannot tell a coordinator from a single node except
// through /healthz, which additionally reports per-shard counters.
//
// Placement: a table ingested with ?dist=shard is split into contiguous rid
// ranges, one per shard (global rid = shard range start + shard-local rid);
// ?dist=replicate (the default) registers a full copy on every shard.
// Queries over replicated tables only run on exactly one shard — the
// session's "home", chosen by a consistent-hash ring over the session id so
// a session's retained captures and its later traces land on the same node.
// Queries that read the sharded table scatter to every shard and gather:
//
//   - group-by results merge two-phase (COUNT/SUM add, MIN/MAX fold, AVG
//     reweights by the partial group sizes carried in group_counts), with
//     output slots assigned on first appearance scanning shards in shard
//     order — the same partition-major discovery order the morsel merge
//     (internal/lineage/merge.go) proves equal to serial order, which is
//     what makes the gathered result element-identical to a single node's;
//   - bound backward/forward traces translate between global and shard-local
//     rids at the coordinator (seed validation happens against the global
//     spaces, so a seed that is out of range for one shard's slice but valid
//     globally is never a 400) and concatenate the per-shard rid-ordered
//     partials seed-major, shard-minor — again the serial append order.
//
// Failure handling is structured, never silent: every shard call carries the
// coordinator's deadline, a shard that is down or does not answer in time
// surfaces as a 503 (serr.Unavailable) naming the shard, and a failed wave
// is cancelled — the coordinator never serves a partial gather and never
// hangs on a wedged shard.
package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smoke/internal/core"
	"smoke/internal/serr"
	"smoke/internal/server"
	"smoke/internal/storage"
)

// Config sizes a Coordinator. Zero fields take the documented defaults.
type Config struct {
	// Shards is the shard-node count (required, >= 1).
	Shards int
	// Workers is each shard's morsel worker-pool size (default 1).
	Workers int
	// ShardTimeout bounds every per-shard call; past it the request answers
	// 503 instead of hanging (default 5s).
	ShardTimeout time.Duration
	// MaxInFlight caps concurrently executing coordinator requests; beyond
	// it requests fail fast with 429 (default 4×GOMAXPROCS).
	MaxInFlight int
	// SessionTTL passes through to every shard's session registry.
	SessionTTL time.Duration
}

// Coordinator implements http.Handler over N shard nodes.
type Coordinator struct {
	nodes   []*node
	ring    *ring
	timeout time.Duration
	gate    chan struct{}
	mux     *http.ServeMux

	mu       sync.RWMutex
	tables   map[string]*table
	sessions map[string]*session
	sessSeq  atomic.Uint64

	// Coordinator counters (/healthz): scatter waves issued, single-shard
	// proxies, merged grouped queries, merged bound traces, shard calls that
	// timed out or were down, shard calls answering an error status, and
	// requests the admission gate turned away.
	scatters      atomic.Uint64
	proxied       atomic.Uint64
	mergedQueries atomic.Uint64
	mergedTraces  atomic.Uint64
	shardTimeouts atomic.Uint64
	shardErrors   atomic.Uint64
	rejected      atomic.Uint64
}

// table is the coordinator's global view of one ingested relation. The
// coordinator keeps the full relation (the shard slices alias its column
// arrays, so this costs no extra row storage) to validate global seeds,
// evaluate forward seed predicates, and serve table metadata globally.
type table struct {
	rel  *storage.Relation
	pk   string
	dist string // "shard" | "replicate"
	// starts has len(shards)+1 entries for dist=shard: shard i holds global
	// rids [starts[i], starts[i+1]).
	starts []int
}

// ownerOf returns the shard holding global rid r of a dist=shard table.
func (t *table) ownerOf(r int) int {
	for s := 0; s+1 < len(t.starts); s++ {
		if r < t.starts[s+1] {
			return s
		}
	}
	return len(t.starts) - 2
}

// New builds a coordinator with cfg.Shards fresh shard nodes.
func New(cfg Config) *Coordinator {
	if cfg.Shards < 1 {
		panic("shard: Config.Shards must be >= 1")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	c := &Coordinator{
		ring:     newRing(cfg.Shards),
		timeout:  cfg.ShardTimeout,
		gate:     make(chan struct{}, cfg.MaxInFlight),
		mux:      http.NewServeMux(),
		tables:   map[string]*table{},
		sessions: map[string]*session{},
	}
	for i := 0; i < cfg.Shards; i++ {
		db := core.Open(core.WithWorkers(cfg.Workers))
		// Admission is enforced once, at the coordinator's front door; the
		// shard servers get wide-open gates so a scatter wave can never 429
		// against its own backends.
		srv := server.New(server.Config{
			DB:          db,
			MaxInFlight: 1024,
			MaxQueued:   4096,
			SessionTTL:  cfg.SessionTTL,
			MaxSessions: 1024,
		})
		n := &node{id: i, db: db, srv: srv}
		n.handler = srv
		c.nodes = append(c.nodes, n)
	}
	c.routes()
	return c
}

// Close shuts every shard node down.
func (c *Coordinator) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.srv.Close(); err != nil && first == nil {
			first = err
		}
		n.db.Close()
	}
	return first
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.nodes) }

// SetShardHandler swaps shard i's request handler — the fault-injection
// seam. nil simulates a killed shard; a blocking handler simulates a wedged
// one. Passing the shard's own server handler restores it.
func (c *Coordinator) SetShardHandler(i int, h http.Handler) {
	c.nodes[i].setHandler(h)
}

// RestoreShardHandler reattaches shard i's real server after an injected
// fault.
func (c *Coordinator) RestoreShardHandler(i int) {
	c.nodes[i].setHandler(c.nodes[i].srv)
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /v1/tables", c.handleListTables)
	c.mux.HandleFunc("GET /v1/tables/{name}", c.handleGetTable)
	c.mux.HandleFunc("POST /v1/tables/{name}", c.handleIngest)
	c.mux.HandleFunc("POST /v1/query", c.handleQuery)
	c.mux.HandleFunc("POST /v1/sessions", c.handleNewSession)
	c.mux.HandleFunc("DELETE /v1/sessions/{id}", c.handleDropSession)
	c.mux.HandleFunc("POST /v1/sessions/{id}/results/{name}", c.handleRunResult)
	c.mux.HandleFunc("GET /v1/sessions/{id}/results/{name}", c.handleGetResult)
	c.mux.HandleFunc("POST /v1/sessions/{id}/results/{name}/trace", c.handleTrace)
}

// ServeHTTP dispatches with panic containment, mirroring the single-node
// server: a handler panic answers 500 instead of killing the connection
// goroutine.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, serr.New(serr.Internal, "shard: internal panic: %v", rec))
		}
	}()
	c.mux.ServeHTTP(w, r)
}

// enter is the coordinator's admission gate: fail fast with Busy (429) past
// MaxInFlight concurrent requests instead of queueing scatter waves onto
// already-saturated shards.
func (c *Coordinator) enter() error {
	select {
	case c.gate <- struct{}{}:
		return nil
	default:
		c.rejected.Add(1)
		return serr.New(serr.Busy, "shard: coordinator at capacity; retry")
	}
}

func (c *Coordinator) exit() { <-c.gate }

type errorJSON struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
		Pos     *int   `json:"pos,omitempty"`
	} `json:"error"`
}

func statusOf(err error) int {
	switch serr.KindOf(err) {
	case serr.Invalid:
		return http.StatusBadRequest
	case serr.NotFound:
		return http.StatusNotFound
	case serr.Gone:
		return http.StatusGone
	case serr.Unsupported:
		return http.StatusUnprocessableEntity
	case serr.Busy:
		return http.StatusTooManyRequests
	case serr.Unavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, err error) {
	var body errorJSON
	body.Error.Kind = serr.KindOf(err).String()
	body.Error.Message = err.Error()
	if pos := serr.PosOf(err); pos >= 0 {
		body.Error.Pos = &pos
	}
	writeJSON(w, statusOf(err), body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeShardReply forwards a shard's reply verbatim (proxy paths).
func writeShardReply(w http.ResponseWriter, res *callResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

const maxBody = 256 << 20

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	nTables, nSessions := len(c.tables), len(c.sessions)
	c.mu.RUnlock()
	body := map[string]any{
		"ok":                true,
		"shards":            len(c.nodes),
		"tables":            nTables,
		"sessions":          nSessions,
		"scatters":          c.scatters.Load(),
		"proxied":           c.proxied.Load(),
		"merged_queries":    c.mergedQueries.Load(),
		"merged_traces":     c.mergedTraces.Load(),
		"shard_timeouts":    c.shardTimeouts.Load(),
		"shard_errors":      c.shardErrors.Load(),
		"rejected_requests": c.rejected.Load(),
	}
	// Per-shard probes share the coordinator deadline (enforced inside invoke
	// through the request context) so a wedged shard makes its entry report
	// ok=false instead of wedging /healthz itself.
	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	perShard := make([]map[string]any, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			entry := map[string]any{
				"shard":    i,
				"calls":    n.calls.Load(),
				"failures": n.failures.Load(),
			}
			res, err := n.invoke(ctx, http.MethodGet, "/healthz", nil, "")
			switch {
			case err != nil:
				entry["ok"] = false
				entry["error"] = err.Error()
			case !res.ok():
				entry["ok"] = false
				entry["error"] = fmt.Sprintf("healthz answered %d", res.status)
			default:
				var h map[string]any
				if json.Unmarshal(res.body, &h) == nil {
					for k, v := range h {
						if k != "ok" {
							entry[k] = v
						}
					}
					entry["ok"] = true
				}
			}
			perShard[i] = entry
		}()
	}
	wg.Wait()
	body["per_shard"] = perShard
	writeJSON(w, http.StatusOK, body)
}

func (c *Coordinator) handleListTables(w http.ResponseWriter, r *http.Request) {
	type tbl struct {
		Name   string           `json:"name"`
		Rows   int              `json:"rows"`
		Dist   string           `json:"dist"`
		Schema []map[string]any `json:"schema"`
	}
	c.mu.RLock()
	var out []tbl
	for name, t := range c.tables {
		entry := tbl{Name: name, Rows: t.rel.N, Dist: t.dist}
		for _, f := range t.rel.Schema {
			entry.Schema = append(entry.Schema, map[string]any{"name": f.Name, "type": typeName(f.Type)})
		}
		out = append(out, entry)
	}
	c.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

func (c *Coordinator) handleGetTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		writeError(w, serr.New(serr.NotFound, "shard: unknown table %q", name))
		return
	}
	var schema []map[string]any
	for _, f := range t.rel.Schema {
		schema = append(schema, map[string]any{"name": f.Name, "type": typeName(f.Type)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": t.rel.N, "dist": t.dist, "schema": schema})
}

func typeName(t storage.Type) string {
	switch t {
	case storage.TInt:
		return "int"
	case storage.TFloat:
		return "float"
	case storage.TString:
		return "string"
	}
	return "?"
}

// splitStarts computes the rid-range boundaries of an n-row table over the
// given shard count: contiguous, near-even slices, the first n%shards of
// them one row longer.
func splitStarts(n, shards int) []int {
	starts := make([]int, shards+1)
	base, rem := n/shards, n%shards
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		starts[i+1] = starts[i] + size
	}
	return starts
}

// handleIngest registers (or replaces) a table across the shards. The body
// and parameters are exactly the single-node ingest API plus ?dist=shard to
// rid-range partition the rows (?dist=replicate, the default, registers a
// full copy per shard). The coordinator parses the body once, verifies a
// declared pk against the GLOBAL rows once, and registers zero-copy slices
// directly into the shard engines — the data plane bypasses the per-shard
// HTTP stack, the control plane does not.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, serr.New(serr.Invalid, "shard: table name is empty"))
		return
	}
	dist := strings.ToLower(r.URL.Query().Get("dist"))
	switch dist {
	case "":
		dist = "replicate"
	case "shard", "replicate":
	default:
		writeError(w, serr.New(serr.Invalid, "shard: unknown dist %q (want shard or replicate)", dist))
		return
	}
	pk := r.URL.Query().Get("pk")

	var (
		rel *storage.Relation
		err error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		rel, err = server.ParseTableCSV(name, http.MaxBytesReader(w, r.Body, maxBody), r.URL.Query().Get("types"))
	} else {
		body, rerr := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if rerr != nil {
			writeError(w, serr.New(serr.Invalid, "shard: read body: %v", rerr))
			return
		}
		var bodyPK string
		rel, bodyPK, err = server.ParseTableJSON(name, body)
		if err == nil && bodyPK != "" {
			pk = bodyPK
		}
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if pk != "" {
		if err := server.VerifyPK(rel, pk); err != nil {
			writeError(w, err)
			return
		}
	}

	t := &table{rel: rel, pk: pk, dist: dist}
	if dist == "shard" {
		t.starts = splitStarts(rel.N, len(c.nodes))
	}
	for i, n := range c.nodes {
		part := rel
		if dist == "shard" {
			part = rel.Slice(name, t.starts[i], t.starts[i+1])
		}
		n.db.Register(part)
		if pk != "" {
			n.db.Catalog().SetPrimaryKey(name, pk)
		}
	}
	c.mu.Lock()
	c.tables[name] = t
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": rel.N})
}

// allShards returns [0, 1, ..., n-1].
func (c *Coordinator) allShards() []int {
	out := make([]int, len(c.nodes))
	for i := range out {
		out[i] = i
	}
	return out
}

// snapshotTables returns the dist book the analyzer reads (a consistent
// snapshot: re-ingests during analysis cannot half-apply).
func (c *Coordinator) snapshotTables() map[string]*table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*table, len(c.tables))
	for k, v := range c.tables {
		out[k] = v
	}
	return out
}
