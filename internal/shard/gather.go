package shard

import (
	"smoke/internal/ops"
	"smoke/internal/serr"
)

// gatherMap remembers how a merged grouped result relates to its per-shard
// partials, so later interactions against the merged result (bound traces,
// per-shard retained captures) can translate both ways:
//
//   - a global output slot → each shard's local row holding that group's
//     partial (or -1 where the shard saw no input for the group);
//   - a shard's local row → the global slot it folded into;
//   - a group-key identity string → the global slot (forward traces map
//     shard-reported output rows back to merged rows by key).
type gatherMap struct {
	localToGlobal [][]int // [shard][localRow] -> global slot
	globalToLocal [][]int // [globalSlot][shard] -> local row, -1 if absent
	keyToGlobal   map[string]int
}

// aggState accumulates one output aggregate across shards. Counts stay in
// int64 (no float round-trip); AVG folds as a group-count-weighted sum so the
// merged mean equals the global mean regardless of how rows split.
type aggState struct {
	i   int64   // Count
	f   float64 // Sum fold; Min/Max fold; Avg weighted numerator
	w   int64   // Avg denominator (summed partial group counts)
	set bool    // Min/Max seeded
}

// mergeGrouped folds per-shard grouped partials into the global grouped
// result. Output slots are assigned on FIRST APPEARANCE scanning parts in
// shard order and rows in each part's own order — shard slices are
// rid-contiguous, so this discovery order is exactly the order a single
// node's grouped scan assigns groups in (the partition-major merge argument
// of internal/lineage/merge.go), which is what makes the merged result
// element-identical, not merely set-equal.
//
// Aggregates fold two-phase: COUNT and SUM add, MIN/MAX take the fold,
// AVG reweights each partial mean by its group's partial input cardinality
// (the group_counts the shard replies carry). The merged reply carries the
// summed group_counts, so a retained merged result supports consuming traces
// the same way a single node's does.
func mergeGrouped(parts []*wireResult, nKeys int, aggs []ops.AggFn) (*wireResult, *gatherMap, error) {
	if len(parts) == 0 {
		return nil, nil, serr.New(serr.Internal, "shard: merge of zero partials")
	}
	first := parts[0]
	if len(first.Types) != nKeys+len(aggs) {
		return nil, nil, serr.New(serr.Internal,
			"shard: partial has %d columns, analysis expects %d keys + %d aggregates",
			len(first.Types), nKeys, len(aggs))
	}
	for s, p := range parts[1:] {
		if len(p.Columns) != len(first.Columns) {
			return nil, nil, serr.New(serr.Internal, "shard: shard %d partial schema differs", s+1)
		}
	}

	gm := &gatherMap{
		localToGlobal: make([][]int, len(parts)),
		keyToGlobal:   map[string]int{},
	}
	var (
		keys        [][]any
		accs        [][]aggState
		groupCounts []int64
	)
	for s, p := range parts {
		if len(p.Rows) > 0 && len(p.GroupCounts) != len(p.Rows) {
			return nil, nil, serr.New(serr.Internal,
				"shard: shard %d partial has %d rows but %d group counts", s, len(p.Rows), len(p.GroupCounts))
		}
		gm.localToGlobal[s] = make([]int, len(p.Rows))
		for r, row := range p.Rows {
			k := encodeKey(row[:nKeys])
			slot, ok := gm.keyToGlobal[k]
			if !ok {
				slot = len(keys)
				gm.keyToGlobal[k] = slot
				keys = append(keys, row[:nKeys])
				accs = append(accs, make([]aggState, len(aggs)))
				groupCounts = append(groupCounts, 0)
				gl := make([]int, len(parts))
				for i := range gl {
					gl[i] = -1
				}
				gm.globalToLocal = append(gm.globalToLocal, gl)
			}
			gm.localToGlobal[s][r] = slot
			gm.globalToLocal[slot][s] = r
			gc := p.GroupCounts[r]
			groupCounts[slot] += gc
			for j, fn := range aggs {
				v := row[nKeys+j]
				acc := &accs[slot][j]
				switch fn {
				case ops.Count:
					iv, ok := v.(int64)
					if !ok {
						return nil, nil, serr.New(serr.Internal, "shard: COUNT partial is %T, want int64", v)
					}
					acc.i += iv
				case ops.Sum:
					fv, ok := v.(float64)
					if !ok {
						return nil, nil, serr.New(serr.Internal, "shard: SUM partial is %T, want float64", v)
					}
					acc.f += fv
				case ops.Min:
					fv, ok := v.(float64)
					if !ok {
						return nil, nil, serr.New(serr.Internal, "shard: MIN partial is %T, want float64", v)
					}
					if !acc.set || fv < acc.f {
						acc.f, acc.set = fv, true
					}
				case ops.Max:
					fv, ok := v.(float64)
					if !ok {
						return nil, nil, serr.New(serr.Internal, "shard: MAX partial is %T, want float64", v)
					}
					if !acc.set || fv > acc.f {
						acc.f, acc.set = fv, true
					}
				case ops.Avg:
					fv, ok := v.(float64)
					if !ok {
						return nil, nil, serr.New(serr.Internal, "shard: AVG partial is %T, want float64", v)
					}
					acc.f += fv * float64(gc)
					acc.w += gc
				default:
					return nil, nil, serr.New(serr.Unsupported, "shard: aggregate %v does not merge across shards", fn)
				}
			}
		}
	}

	out := &wireResult{
		Columns:     first.Columns,
		Types:       first.Types,
		Rows:        make([][]any, len(keys)),
		N:           len(keys),
		GroupCounts: groupCounts,
	}
	for slot, ks := range keys {
		row := make([]any, 0, nKeys+len(aggs))
		row = append(row, ks...)
		for j, fn := range aggs {
			acc := accs[slot][j]
			switch fn {
			case ops.Count:
				row = append(row, acc.i)
			case ops.Avg:
				if acc.w == 0 {
					row = append(row, 0.0)
				} else {
					row = append(row, acc.f/float64(acc.w))
				}
			default:
				row = append(row, acc.f)
			}
		}
		out.Rows[slot] = row
	}
	// StrategyUsed is a per-node observability field; surface it only when
	// every shard answered the same thing.
	strategy := first.StrategyUsed
	for _, p := range parts[1:] {
		if p.StrategyUsed != strategy {
			strategy = ""
			break
		}
	}
	out.StrategyUsed = strategy
	return out, gm, nil
}

// emptyLike builds a zero-row result with a partial's schema (empty trace
// waves gather into this instead of a nil reply).
func emptyLike(p *wireResult) *wireResult {
	return &wireResult{Columns: p.Columns, Types: p.Types, Rows: [][]any{}, N: 0}
}
