package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smoke/internal/serverclient"
	"smoke/internal/shard"
)

// shardErr unwraps a serverclient error and asserts its HTTP status and serr
// kind — fault handling must be STRUCTURED, never a hang, panic, or bare 500.
func shardErr(t *testing.T, tag string, err error, status int, kind string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected an error, got success", tag)
	}
	var se *serverclient.Error
	if !errors.As(err, &se) {
		t.Fatalf("%s: error is %T (%v), want *serverclient.Error", tag, err, err)
	}
	if se.Status != status || se.Kind != kind {
		t.Fatalf("%s: got %d/%s (%s), want %d/%s", tag, se.Status, se.Kind, se.Message, status, kind)
	}
}

// startFaultCoord builds a coordinator with a short per-shard deadline so the
// wedged-shard tests bound their own runtime.
func startFaultCoord(t *testing.T, shards int, timeout time.Duration) (*shard.Coordinator, *serverclient.Client) {
	t.Helper()
	coord := shard.New(shard.Config{Shards: shards, ShardTimeout: timeout})
	ts := httptest.NewServer(coord)
	t.Cleanup(func() {
		ts.Close()
		_ = coord.Close()
	})
	return coord, serverclient.New(ts.URL, nil)
}

// TestKilledShardAnswers503 kills one shard mid-session: every request whose
// wave touches it must answer a structured 503 naming the shard, within the
// coordinator deadline; restoring the shard restores service.
func TestKilledShardAnswers503(t *testing.T) {
	ctx := context.Background()
	const timeout = 2 * time.Second
	coord, c := startFaultCoord(t, 4, timeout)
	ingest(t, c, "shard")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const baseSQL = "SELECT k, COUNT(*) AS cnt, SUM(v) AS sv FROM fact GROUP BY k"
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
		t.Fatalf("run before fault: %v", err)
	}

	coord.SetShardHandler(2, nil) // shard 2 is gone

	checks := []struct {
		tag string
		do  func() error
	}{
		{"scatter query", func() error {
			_, err := c.Query(ctx, serverclient.QueryRequest{SQL: baseSQL})
			return err
		}},
		{"scattered trace", func() error {
			_, err := sess.Trace(ctx, "base", serverclient.TraceRequest{Direction: "backward", Table: "fact", Rids: []int64{0}})
			return err
		}},
		{"retained run", func() error {
			_, err := sess.Run(ctx, "base2", serverclient.QueryRequest{SQL: baseSQL})
			return err
		}},
	}
	for _, chk := range checks {
		start := time.Now()
		err := chk.do()
		elapsed := time.Since(start)
		shardErr(t, chk.tag, err, http.StatusServiceUnavailable, "unavailable")
		if elapsed > timeout+time.Second {
			t.Fatalf("%s: took %v, want well under the %v coordinator deadline", chk.tag, elapsed, timeout)
		}
	}

	// /healthz must stay answerable with a down shard and report it ok=false.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("healthz with a dead shard: %v", err)
	}
	perShard, _ := h["per_shard"].([]any)
	if len(perShard) != 4 {
		t.Fatalf("healthz per_shard: %d entries, want 4", len(perShard))
	}
	deadEntry, _ := perShard[2].(map[string]any)
	if ok, _ := deadEntry["ok"].(bool); ok {
		t.Fatalf("healthz reports dead shard 2 as ok: %v", deadEntry)
	}

	coord.RestoreShardHandler(2)
	got, err := c.Query(ctx, serverclient.QueryRequest{SQL: baseSQL})
	if err != nil {
		t.Fatalf("query after restore: %v", err)
	}
	if got.N != 5 {
		t.Fatalf("query after restore: %d groups, want 5", got.N)
	}
}

// TestWedgedShardTimesOut wedges a shard (its handler blocks until the
// request context dies). Every wave touching it must come back as a 503
// within the coordinator deadline — the coordinator abandons the stuck
// goroutine rather than waiting on it — and /healthz must not wedge either.
func TestWedgedShardTimesOut(t *testing.T) {
	ctx := context.Background()
	const timeout = 400 * time.Millisecond
	coord, c := startFaultCoord(t, 2, timeout)
	ingest(t, c, "shard")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const baseSQL = "SELECT b, COUNT(*) AS cnt FROM fact GROUP BY b"
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
		t.Fatalf("run before fault: %v", err)
	}

	wedged := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold the call until the coordinator gives up
	})
	coord.SetShardHandler(1, wedged)

	for _, chk := range []struct {
		tag string
		do  func() error
	}{
		{"scatter query", func() error {
			_, err := c.Query(ctx, serverclient.QueryRequest{SQL: baseSQL})
			return err
		}},
		// A rid-seeded trace below the scan threshold takes the per-seed
		// scatter path (trace-all would be answered coordinator-side from the
		// global relation and never touch the wedged shard).
		{"scattered trace", func() error {
			_, err := sess.Trace(ctx, "base", serverclient.TraceRequest{Direction: "backward", Table: "fact", Rids: []int64{0}})
			return err
		}},
	} {
		start := time.Now()
		err := chk.do()
		elapsed := time.Since(start)
		shardErr(t, chk.tag, err, http.StatusServiceUnavailable, "unavailable")
		if elapsed > timeout+time.Second {
			t.Fatalf("%s: took %v with a wedged shard, want ~%v", chk.tag, elapsed, timeout)
		}
	}

	start := time.Now()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("healthz with a wedged shard: %v", err)
	}
	if elapsed := time.Since(start); elapsed > timeout+time.Second {
		t.Fatalf("healthz took %v with a wedged shard, want ~%v", elapsed, timeout)
	}
	perShard, _ := h["per_shard"].([]any)
	wedgedEntry, _ := perShard[1].(map[string]any)
	if ok, _ := wedgedEntry["ok"].(bool); ok {
		t.Fatalf("healthz reports wedged shard 1 as ok: %v", wedgedEntry)
	}

	coord.RestoreShardHandler(1)
	if _, err := c.Query(ctx, serverclient.QueryRequest{SQL: baseSQL}); err != nil {
		t.Fatalf("query after restore: %v", err)
	}
}

// TestPanickingShardIsContained injects a handler that panics on every call:
// the coordinator must contain it (a shard-side 500, surfaced as a structured
// coordinator error) and must itself keep serving.
func TestPanickingShardIsContained(t *testing.T) {
	ctx := context.Background()
	coord, c := startFaultCoord(t, 2, 2*time.Second)
	ingest(t, c, "shard")

	coord.SetShardHandler(0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("injected shard panic")
	}))
	_, err := c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT b, COUNT(*) AS cnt FROM fact GROUP BY b"})
	var se *serverclient.Error
	if !errors.As(err, &se) {
		t.Fatalf("panicking shard: error is %T (%v), want *serverclient.Error", err, err)
	}
	if se.Status != http.StatusInternalServerError {
		t.Fatalf("panicking shard: status %d, want 500", se.Status)
	}

	coord.RestoreShardHandler(0)
	if _, err := c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT b, COUNT(*) AS cnt FROM fact GROUP BY b"}); err != nil {
		t.Fatalf("query after restore: %v", err)
	}
}

// TestFailureCountersAdvance pins the /healthz failure accounting: killed-
// shard waves bump shard_timeouts (the unavailable path) and the failing
// shard's per-shard failure counter.
func TestFailureCountersAdvance(t *testing.T) {
	ctx := context.Background()
	coord, c := startFaultCoord(t, 2, time.Second)
	ingest(t, c, "shard")

	before, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coord.SetShardHandler(1, nil)
	for i := 0; i < 3; i++ {
		_, qerr := c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k"})
		shardErr(t, fmt.Sprintf("dead-shard query %d", i), qerr, http.StatusServiceUnavailable, "unavailable")
	}
	coord.RestoreShardHandler(1)
	after, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if asInt(t, after["shard_timeouts"]) < asInt(t, before["shard_timeouts"])+3 {
		t.Fatalf("shard_timeouts did not advance by 3: before %v, after %v", before["shard_timeouts"], after["shard_timeouts"])
	}
	perShard, _ := after["per_shard"].([]any)
	entry, _ := perShard[1].(map[string]any)
	if asInt(t, entry["failures"]) < 3 {
		t.Fatalf("shard 1 failures = %v, want >= 3", entry["failures"])
	}
}
