package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smoke/internal/core"
	"smoke/internal/server"
	"smoke/internal/serverclient"
	"smoke/internal/shard"
)

// startCoord spins up a coordinator behind a real HTTP listener and returns
// a client for it.
func startCoord(t *testing.T, shards int) (*shard.Coordinator, *serverclient.Client) {
	t.Helper()
	coord := shard.New(shard.Config{Shards: shards, ShardTimeout: 5 * time.Second})
	ts := httptest.NewServer(coord)
	t.Cleanup(func() {
		ts.Close()
		_ = coord.Close()
	})
	return coord, serverclient.New(ts.URL, nil)
}

// startSingle spins up a plain single-node server — the reference the
// sharded answers must be element-identical to.
func startSingle(t *testing.T) *serverclient.Client {
	t.Helper()
	db := core.Open(core.WithWorkers(1))
	srv := server.New(server.Config{DB: db})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
		db.Close()
	})
	return serverclient.New(ts.URL, nil)
}

// testData is a small dim/fact pair: fact shards, dim replicates.
func testData() (dimSchema, factSchema []serverclient.Field, dimRows, factRows [][]any) {
	dimSchema = []serverclient.Field{{Name: "g", Type: "int"}, {Name: "label", Type: "string"}}
	factSchema = []serverclient.Field{{Name: "k", Type: "int"}, {Name: "b", Type: "int"}, {Name: "v", Type: "float"}}
	for g := 0; g < 5; g++ {
		dimRows = append(dimRows, []any{g, fmt.Sprintf("g%d", g)})
	}
	for i := 0; i < 103; i++ {
		factRows = append(factRows, []any{i % 5, i % 7, float64(i%13) + 0.5})
	}
	return
}

// ingest loads the test data into a server; dist applies only when the
// target understands it (the coordinator).
func ingest(t *testing.T, c *serverclient.Client, factDist string) {
	t.Helper()
	ctx := context.Background()
	dimSchema, factSchema, dimRows, factRows := testData()
	if err := c.CreateTableDist(ctx, "dim", dimSchema, dimRows, "g", "replicate"); err != nil {
		t.Fatalf("ingest dim: %v", err)
	}
	if err := c.CreateTableDist(ctx, "fact", factSchema, factRows, "", factDist); err != nil {
		t.Fatalf("ingest fact: %v", err)
	}
}

func sameResult(t *testing.T, tag string, got, want *serverclient.Result) {
	t.Helper()
	if got.N != want.N || len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: row count %d vs reference %d", tag, got.N, want.N)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: column count %d vs %d", tag, len(got.Columns), len(want.Columns))
	}
	for i, col := range want.Columns {
		if got.Columns[i] != col || got.Types[i] != want.Types[i] {
			t.Fatalf("%s: schema mismatch at %d: %s/%s vs %s/%s", tag, i, got.Columns[i], got.Types[i], col, want.Types[i])
		}
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			g, w := got.Rows[r][c], want.Rows[r][c]
			if gf, ok := g.(float64); ok {
				wf, ok := w.(float64)
				if !ok {
					t.Fatalf("%s: row %d col %d type mismatch: %T vs %T", tag, r, c, g, w)
				}
				if diff := math.Abs(gf - wf); diff > 1e-9*math.Max(1, math.Abs(wf)) {
					t.Fatalf("%s: row %d col %d: %v vs %v", tag, r, c, gf, wf)
				}
				continue
			}
			if g != w {
				t.Fatalf("%s: row %d col %d: got %v (%T), want %v (%T)", tag, r, c, g, g, w, w)
			}
		}
	}
}

// TestScatterQueryMatchesSingleNode: grouped scans and dim-joins over the
// sharded fact table answer element-identically to a single node, for every
// shard count.
func TestScatterQueryMatchesSingleNode(t *testing.T) {
	ctx := context.Background()
	ref := startSingle(t)
	ingest(t, ref, "")

	queries := []string{
		"SELECT b, COUNT(*) AS cnt FROM fact GROUP BY b",
		"SELECT k, COUNT(*) AS cnt, SUM(v) AS sv, AVG(v) AS av, MIN(v) AS mn, MAX(v) AS mx FROM fact GROUP BY k",
		// Joins write the sharded table LAST (probe side); grouping by a dim
		// column and by a fact column exercise both group-discovery orders.
		"SELECT label, SUM(v) AS sv FROM dim JOIN fact ON fact.k = dim.g GROUP BY label",
		"SELECT b, COUNT(*) AS cnt, SUM(v) AS sv FROM dim JOIN fact ON fact.k = dim.g WHERE v < 9 GROUP BY b",
	}
	for _, shards := range []int{1, 2, 4} {
		_, c := startCoord(t, shards)
		ingest(t, c, "shard")
		for _, q := range queries {
			want, err := ref.Query(ctx, serverclient.QueryRequest{SQL: q})
			if err != nil {
				t.Fatalf("reference %q: %v", q, err)
			}
			got, err := c.Query(ctx, serverclient.QueryRequest{SQL: q})
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, q, err)
			}
			sameResult(t, fmt.Sprintf("shards=%d %q", shards, q), got, want)
		}
	}
}

// TestScatteredTraceMatchesSingleNode: retained grouped results answer
// backward traces (plain and consuming) and forward traces
// element-identically to a single node.
func TestScatteredTraceMatchesSingleNode(t *testing.T) {
	ctx := context.Background()
	ref := startSingle(t)
	ingest(t, ref, "")
	refSess, err := ref.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const baseSQL = "SELECT k, COUNT(*) AS cnt, SUM(v) AS sv FROM fact GROUP BY k"
	refBase, err := refSess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL})
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		_, c := startCoord(t, shards)
		ingest(t, c, "shard")
		sess, err := c.NewSession(ctx)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		base, err := sess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL})
		if err != nil {
			t.Fatalf("shards=%d run: %v", shards, err)
		}
		sameResult(t, fmt.Sprintf("shards=%d base", shards), base, refBase)

		traces := []serverclient.TraceRequest{
			{Direction: "backward", Table: "fact", Rids: []int64{0}},
			{Direction: "backward", Table: "fact", Rids: []int64{int64(base.N - 1), 0, 2}},
			{Direction: "backward", Table: "fact"}, // trace-all
			{Direction: "backward", Table: "fact", SeedWhere: "k >= 2"},
			{Direction: "backward", Table: "fact", Rids: []int64{1}, Where: "b = 3"},
			{Direction: "backward", Table: "fact", Rids: []int64{0, 1},
				GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "v", Name: "sv"}, {Fn: "avg", Arg: "v", Name: "av"}}},
			{Direction: "forward", Table: "fact", Rids: []int64{0, 51, 102}},
			{Direction: "forward", Table: "fact", SeedWhere: "b = 1"},
			{Direction: "forward", Table: "fact", Rids: []int64{5, 6, 7}, Where: "cnt > 20"},
		}
		for i, tr := range traces {
			want, err := refSess.Trace(ctx, "base", tr)
			if err != nil {
				t.Fatalf("reference trace %d: %v", i, err)
			}
			got, err := sess.Trace(ctx, "base", tr)
			if err != nil {
				t.Fatalf("shards=%d trace %d: %v", shards, i, err)
			}
			sameResult(t, fmt.Sprintf("shards=%d trace %d", shards, i), got, want)
		}
	}
}

// TestSeedTranslationGlobalRange is the latent-assumption regression: a seed
// rid that is valid GLOBALLY but out of range for every individual shard's
// slice must succeed — the coordinator validates against the global spaces
// and hands each shard a translated local rid, so no shard ever sees an
// out-of-range seed. A pre-translation implementation would forward the
// global rid and 400.
func TestSeedTranslationGlobalRange(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 4)
	ingest(t, c, "shard") // 103 fact rows → slices of ~26: global rid 102 is out of range for every slice
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k",
	}); err != nil {
		t.Fatal(err)
	}
	// Forward: global rid 102 (> every shard's ~26-row slice).
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "forward", Table: "fact", Rids: []int64{102},
	}); err != nil {
		t.Fatalf("valid-global forward seed 400ed: %v", err)
	}
	// Truly out-of-global-range still 400s.
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "forward", Table: "fact", Rids: []int64{103},
	})
	if se, ok := err.(*serverclient.Error); !ok || se.Status != 400 {
		t.Fatalf("out-of-global-range seed: want 400, got %v", err)
	}
}

// TestScatterFences: shapes whose gather would be silently wrong are
// structured 422s, never wrong answers.
func TestScatterFences(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 2)
	ingest(t, c, "shard")

	for _, q := range []string{
		"SELECT k, COUNT(DISTINCT b) AS d FROM fact GROUP BY k",
		"SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k HAVING cnt > 10",
		"SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k ORDER BY cnt",
		"SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k LIMIT 3",
		// The sharded table on the build side: output order follows the
		// replicated probe table, interleaving shards' build rows.
		"SELECT label, SUM(v) AS sv FROM fact JOIN dim ON fact.k = dim.g GROUP BY label",
	} {
		_, err := c.Query(ctx, serverclient.QueryRequest{SQL: q})
		se, ok := err.(*serverclient.Error)
		if !ok || se.Status != 422 {
			t.Fatalf("%q: want 422, got %v", q, err)
		}
	}

	// Replicated-only statements are NOT fenced — they proxy.
	if _, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT label, COUNT(*) AS n FROM dim GROUP BY label",
	}); err != nil {
		t.Fatalf("replicated-only query should proxy: %v", err)
	}

	// shards=1 has no fences at all.
	_, c1 := startCoord(t, 1)
	ingest(t, c1, "shard")
	if _, err := c1.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(DISTINCT b) AS d FROM fact GROUP BY k",
	}); err != nil {
		t.Fatalf("shards=1 must be fence-free: %v", err)
	}
}

// TestHealthzCounters: the coordinator healthz aggregates per-shard entries
// and its own counters.
func TestHealthzCounters(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 2)
	ingest(t, c, "shard")
	if _, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k",
	}); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if asInt(t, h["shards"]) != 2 {
		t.Fatalf("healthz shards = %v, want 2", h["shards"])
	}
	for _, key := range []string{"scatters", "proxied", "merged_queries", "merged_traces", "shard_timeouts", "shard_errors", "rejected_requests", "per_shard"} {
		if _, ok := h[key]; !ok {
			t.Fatalf("healthz missing %q: %v", key, h)
		}
	}
	per, ok := h["per_shard"].([]any)
	if !ok || len(per) != 2 {
		t.Fatalf("per_shard = %v, want 2 entries", h["per_shard"])
	}
	for _, e := range per {
		entry := e.(map[string]any)
		if entry["ok"] != true {
			t.Fatalf("healthy shard reports not-ok: %v", entry)
		}
		if _, ok := entry["calls"]; !ok {
			t.Fatalf("per-shard entry missing calls counter: %v", entry)
		}
	}
	if asInt(t, h["merged_queries"]) < 1 {
		t.Fatalf("merged_queries not counted: %v", h["merged_queries"])
	}
}

// asInt reads a healthz numeric field (the client decodes with UseNumber).
func asInt(t *testing.T, v any) int64 {
	t.Helper()
	n, ok := v.(json.Number)
	if !ok {
		t.Fatalf("healthz value %v is %T, want a number", v, v)
	}
	i, err := n.Int64()
	if err != nil {
		t.Fatalf("healthz value %v: %v", v, err)
	}
	return i
}

// TestReplicatedSessionFlow: a session against replicated tables behaves
// exactly like a single node (retain, get, trace, retain-chaining, drop).
func TestReplicatedSessionFlow(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 3)
	ingest(t, c, "replicate")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT k, SUM(v) AS sv FROM fact GROUP BY k",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result(ctx, "base")
	if err != nil {
		t.Fatal(err)
	}
	if got.N != base.N {
		t.Fatalf("GET result N=%d, want %d", got.N, base.N)
	}
	// Retain-chaining works on home-shard results (proxied untouched).
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", Rids: []int64{0},
		GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}},
		Retain: "drill",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Trace(ctx, "drill", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", Rids: []int64{0},
	}); err != nil {
		t.Fatalf("chained trace against retained trace result: %v", err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Result(ctx, "base"); err == nil {
		t.Fatal("dropped session still answers")
	}
}

// TestDroppedSessionAnswers410 pins the coordinator to the single-node
// registry's 410-vs-404 split: a dropped session is Gone (the client should
// open a new one), an id that never existed is NotFound. The coordinator has
// no tombstone set — it derives "was created here" from its monotonic id
// sequence — so this guards that reconstruction.
func TestDroppedSessionAnswers410(t *testing.T) {
	ctx := context.Background()
	coord := shard.New(shard.Config{Shards: 2, ShardTimeout: 5 * time.Second})
	ts := httptest.NewServer(coord)
	t.Cleanup(func() {
		ts.Close()
		_ = coord.Close()
	})
	c := serverclient.New(ts.URL, nil)
	ingest(t, c, "shard")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", Rids: []int64{0},
	})
	var se *serverclient.Error
	if !errors.As(err, &se) || se.Status != 410 || se.Kind != "gone" {
		t.Fatalf("trace after drop: got %v, want 410 gone", err)
	}
	if err := sess.Close(ctx); err == nil {
		t.Fatal("second drop: expected an error, got success")
	} else if !errors.As(err, &se) || se.Status != 410 {
		t.Fatalf("second drop: got %v, want 410 gone", err)
	}
	// A made-up id never minted by this coordinator stays a plain 404.
	for _, path := range []string{"/v1/sessions/cs-999999/results/base", "/v1/sessions/bogus/results/base"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, res.StatusCode)
		}
	}
}

// TestScatteredTraceFences: traces a scattered result cannot answer
// faithfully are 422s.
func TestScatteredTraceFences(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 2)
	ingest(t, c, "shard")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS cnt FROM dim JOIN fact ON fact.k = dim.g GROUP BY k",
	}); err != nil {
		t.Fatal(err)
	}
	cases := []serverclient.TraceRequest{
		{Direction: "backward", Table: "dim", Rids: []int64{0}},                                                              // non-sharded table
		{Direction: "backward", Table: "fact", Rids: []int64{0}, Retain: "x"},                                                // retain
		{Direction: "forward", Table: "fact", Rids: []int64{0}, GroupBy: []string{"k"}},                                      // consuming forward
		{Direction: "backward", Table: "fact", Rids: []int64{0}, Aggs: []serverclient.Agg{{Fn: "count_distinct", Arg: "b"}}}, // count_distinct
	}
	for i, tr := range cases {
		_, err := sess.Trace(ctx, "base", tr)
		se, ok := err.(*serverclient.Error)
		if !ok || se.Status != 422 {
			t.Fatalf("fence case %d: want 422, got %v", i, err)
		}
	}
}

// TestScatteredTraceStrategyMatrix: the coordinator mirrors the engine's
// scan-vs-index trace decision with GLOBAL seed counts. That decision differs
// per strategy (eager applies the half-the-output threshold, lazy rewrites
// unconditionally, hybrid captures backward eagerly), so every explicit
// strategy must stay element-identical to a single node above AND below the
// threshold, plain and consuming.
func TestScatteredTraceStrategyMatrix(t *testing.T) {
	ctx := context.Background()
	const baseSQL = "SELECT k, COUNT(*) AS cnt, SUM(v) AS sv FROM fact GROUP BY k"
	traces := []serverclient.TraceRequest{
		{Direction: "backward", Table: "fact"},                      // trace-all: scan shape, above threshold
		{Direction: "backward", Table: "fact", SeedWhere: "k >= 2"}, // 3 of 5 groups: at/above threshold
		{Direction: "backward", Table: "fact", SeedWhere: "k >= 3"}, // 2 of 5 groups: below the eager threshold → index for eager, scan for lazy
		{Direction: "backward", Table: "fact", SeedWhere: "k = 1"},  // single seed: path-independent
		{Direction: "backward", Table: "fact", SeedWhere: "k >= 3", Where: "b < 4"},
		{Direction: "backward", Table: "fact", // consuming trace-all: scan discovery order must survive re-aggregation
			GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "v", Name: "sv"}}},
		{Direction: "backward", Table: "fact", SeedWhere: "k >= 2",
			GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}}},
		{Direction: "backward", Table: "fact", SeedWhere: "k >= 3", Strategy: "lazy"}, // trace-level force beats the result's routing
	}
	for _, strategy := range []string{"eager", "lazy", "hybrid"} {
		ref := startSingle(t)
		ingest(t, ref, "")
		refSess, err := ref.NewSession(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := refSess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL, Strategy: strategy}); err != nil {
			t.Fatalf("%s reference run: %v", strategy, err)
		}
		for _, shards := range []int{2, 4} {
			_, c := startCoord(t, shards)
			ingest(t, c, "shard")
			sess, err := c.NewSession(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL, Strategy: strategy}); err != nil {
				t.Fatalf("%s shards=%d run: %v", strategy, shards, err)
			}
			for i, tr := range traces {
				want, err := refSess.Trace(ctx, "base", tr)
				if err != nil {
					t.Fatalf("%s reference trace %d: %v", strategy, i, err)
				}
				got, err := sess.Trace(ctx, "base", tr)
				if err != nil {
					t.Fatalf("%s shards=%d trace %d: %v", strategy, shards, i, err)
				}
				sameResult(t, fmt.Sprintf("%s shards=%d trace %d", strategy, shards, i), got, want)
			}
		}
	}
}

// TestAutoStrategyTraceFence: strategy "auto" resolves against per-node
// runtime counters the coordinator cannot see. Traces whose row order depends
// on that resolution (multi-seed, below the eager scan threshold) are a
// structured 422 — never a guessed order — while order-independent traces on
// the same result still answer.
func TestAutoStrategyTraceFence(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 2)
	ingest(t, c, "shard")
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k", Strategy: "auto",
	}); err != nil {
		t.Fatal(err)
	}
	// Below threshold (2 of 5 groups) and multi-seed: order depends on auto.
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", SeedWhere: "k >= 3",
	})
	if se, ok := err.(*serverclient.Error); !ok || se.Status != 422 {
		t.Fatalf("auto below-threshold trace: want 422, got %v", err)
	}
	// Above threshold both paths collapse to the scan — no fence.
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", SeedWhere: "k >= 1",
	}); err != nil {
		t.Fatalf("auto above-threshold trace should answer: %v", err)
	}
	// Single seed is path-independent — no fence.
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", SeedWhere: "k = 4",
	}); err != nil {
		t.Fatalf("auto single-seed trace should answer: %v", err)
	}
	// Explicit rids take the per-seed path — no fence, and a trace-level
	// explicit strategy also lifts it.
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", Rids: []int64{3, 4},
	}); err != nil {
		t.Fatalf("auto explicit-rid trace should answer: %v", err)
	}
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "fact", SeedWhere: "k >= 3", Strategy: "lazy",
	}); err != nil {
		t.Fatalf("auto base + forced-lazy trace should answer: %v", err)
	}
}

// TestUnboundLineageQueryScattered: stateless LINEAGE BACKWARD queries
// scatter when the traced query collapses to a scan (each shard rewrites
// unconditionally, slices are rid-contiguous, so the part-major merge sees
// global first-appearance order); traced joins are fenced.
func TestUnboundLineageQueryScattered(t *testing.T) {
	ctx := context.Background()
	ref := startSingle(t)
	ingest(t, ref, "")
	queries := []string{
		"SELECT b, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE k >= 3) GROUP BY b",
		"SELECT b, COUNT(*) AS n, SUM(v) AS sv FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact WHERE v < 9 GROUP BY k OF fact WHERE k = 2) GROUP BY b",
		"SELECT k, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact) WHERE b = 1 GROUP BY k",
	}
	for _, shards := range []int{1, 2, 4} {
		_, c := startCoord(t, shards)
		ingest(t, c, "shard")
		for _, q := range queries {
			want, err := ref.Query(ctx, serverclient.QueryRequest{SQL: q})
			if err != nil {
				t.Fatalf("reference %q: %v", q, err)
			}
			got, err := c.Query(ctx, serverclient.QueryRequest{SQL: q})
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, q, err)
			}
			sameResult(t, fmt.Sprintf("shards=%d %q", shards, q), got, want)
		}
	}

	// A traced query that joins does not collapse to a scan: its per-seed
	// expansion follows each shard's local group order, so it is fenced.
	_, c := startCoord(t, 2)
	ingest(t, c, "shard")
	_, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact JOIN dim ON fact.k = dim.g GROUP BY k OF fact WHERE k = 1) GROUP BY k",
	})
	if se, ok := err.(*serverclient.Error); !ok || se.Status != 422 {
		t.Fatalf("traced join under sharding: want 422, got %v", err)
	}
}

// TestTraceSurvivesReingest: a bound trace reads the relation instance the
// result was captured against — on a single node via the captured
// BaseRelation, on the coordinator via the placement's table snapshot. A
// re-ingest (even with different cardinality) must not disturb either the
// per-seed path or the coordinator-answered scan path.
func TestTraceSurvivesReingest(t *testing.T) {
	ctx := context.Background()
	reingest := func(c *serverclient.Client, dist string) {
		t.Helper()
		_, factSchema, _, _ := testData()
		var rows [][]any
		for i := 0; i < 41; i++ {
			rows = append(rows, []any{i % 3, i % 2, float64(i) + 0.25})
		}
		if err := c.CreateTableDist(ctx, "fact", factSchema, rows, "", dist); err != nil {
			t.Fatalf("re-ingest: %v", err)
		}
	}
	const baseSQL = "SELECT k, COUNT(*) AS cnt FROM fact GROUP BY k"
	traces := []serverclient.TraceRequest{
		{Direction: "backward", Table: "fact", Rids: []int64{0, 2}}, // per-seed path
		{Direction: "backward", Table: "fact"},                      // coordinator-side scan from the snapshot
		{Direction: "forward", Table: "fact", Rids: []int64{100}},   // valid against the 103-row capture, not the 41-row live table
	}

	ref := startSingle(t)
	ingest(t, ref, "")
	refSess, err := ref.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refSess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
		t.Fatal(err)
	}
	reingest(ref, "")

	for _, shards := range []int{2, 4} {
		_, c := startCoord(t, shards)
		ingest(t, c, "shard")
		sess, err := c.NewSession(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
			t.Fatal(err)
		}
		reingest(c, "shard")
		for i, tr := range traces {
			want, err := refSess.Trace(ctx, "base", tr)
			if err != nil {
				t.Fatalf("reference post-reingest trace %d: %v", i, err)
			}
			got, err := sess.Trace(ctx, "base", tr)
			if err != nil {
				t.Fatalf("shards=%d post-reingest trace %d: %v", shards, i, err)
			}
			sameResult(t, fmt.Sprintf("shards=%d post-reingest trace %d", shards, i), got, want)
		}
	}
}

// TestScatteredJoinTraceMatchesSingleNode: with the sharded table as the
// probe (last) join source, every per-group lineage list follows the probe
// slice's rid order, so the per-seed gather is order-exact — backward and
// forward traces of join results must match a single node element-for-element.
func TestScatteredJoinTraceMatchesSingleNode(t *testing.T) {
	ctx := context.Background()
	ref := startSingle(t)
	ingest(t, ref, "")
	refSess, err := ref.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bases := []string{
		"SELECT label, COUNT(*) AS cnt, SUM(v) AS sv FROM dim JOIN fact ON fact.k = dim.g GROUP BY label",
		"SELECT b, COUNT(*) AS cnt FROM dim JOIN fact ON fact.k = dim.g WHERE v < 11 GROUP BY b",
	}
	for bi, baseSQL := range bases {
		name := fmt.Sprintf("base%d", bi)
		refBase, err := refSess.Run(ctx, name, serverclient.QueryRequest{SQL: baseSQL})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4} {
			_, c := startCoord(t, shards)
			ingest(t, c, "shard")
			sess, err := c.NewSession(ctx)
			if err != nil {
				t.Fatal(err)
			}
			base, err := sess.Run(ctx, name, serverclient.QueryRequest{SQL: baseSQL})
			if err != nil {
				t.Fatalf("shards=%d base %d: %v", shards, bi, err)
			}
			sameResult(t, fmt.Sprintf("shards=%d base %d", shards, bi), base, refBase)
			traces := []serverclient.TraceRequest{
				{Direction: "backward", Table: "fact", Rids: []int64{0}},
				{Direction: "backward", Table: "fact", Rids: []int64{int64(base.N - 1), 0}},
				{Direction: "backward", Table: "fact"},
				{Direction: "backward", Table: "fact", Rids: []int64{0}, Where: "b >= 2"},
				{Direction: "backward", Table: "fact", Rids: []int64{0, 1},
					GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "v", Name: "sv"}}},
				{Direction: "forward", Table: "fact", Rids: []int64{0, 51, 102}},
				{Direction: "forward", Table: "fact", SeedWhere: "b = 2"},
			}
			for i, tr := range traces {
				want, err := refSess.Trace(ctx, name, tr)
				if err != nil {
					t.Fatalf("reference base %d trace %d: %v", bi, i, err)
				}
				got, err := sess.Trace(ctx, name, tr)
				if err != nil {
					t.Fatalf("shards=%d base %d trace %d: %v", shards, bi, i, err)
				}
				sameResult(t, fmt.Sprintf("shards=%d base %d trace %d", shards, bi, i), got, want)
			}
		}
	}
}
