package shard

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/serr"
	"smoke/internal/sql"
	"smoke/internal/storage"
)

// traceBody mirrors the single-node trace request. Rids carries no omitempty
// on purpose: nil means "trace everything" while a present-but-empty list is
// an explicit zero-seed trace, and the outbound per-shard requests must keep
// that distinction when they re-encode (omitempty would silently turn an
// empty seed list into a trace-all).
type traceBody struct {
	Direction string         `json:"direction"`
	Table     string         `json:"table"`
	Rids      []int64        `json:"rids"`
	SeedWhere string         `json:"seed_where,omitempty"`
	Where     string         `json:"where,omitempty"`
	GroupBy   []string       `json:"group_by,omitempty"`
	Aggs      []aggJSON      `json:"aggs,omitempty"`
	Capture   string         `json:"capture,omitempty"`
	Compress  bool           `json:"compress,omitempty"`
	Params    map[string]any `json:"params,omitempty"`
	Retain    string         `json:"retain,omitempty"`
	Strategy  string         `json:"strategy,omitempty"`
}

type aggJSON struct {
	Fn   string `json:"fn"`
	Arg  string `json:"arg,omitempty"`
	Name string `json:"name,omitempty"`
}

func parseAggFn(s string) (ops.AggFn, error) {
	switch strings.ToLower(s) {
	case "count":
		return ops.Count, nil
	case "sum":
		return ops.Sum, nil
	case "avg":
		return ops.Avg, nil
	case "min":
		return ops.Min, nil
	case "max":
		return ops.Max, nil
	case "count_distinct":
		return ops.CountDistinct, nil
	}
	return 0, serr.New(serr.Invalid, "server: unknown aggregate %q", s)
}

// handleTrace runs a bound trace against a retained result. Results retained
// whole on the session's home shard (and every result in a single-shard
// deployment) proxy untouched — exact single-node behavior. Results gathered
// from scattered partials translate between the global and the shard-local
// rid spaces here, which is precisely why a seed that is valid globally but
// out of range for any single shard's slice must never 400: validation runs
// against the GLOBAL spaces (the merged output for backward, the whole base
// table for forward) before any shard sees a translated local rid.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	sess, err := c.lookupSession(id)
	if err != nil {
		writeError(w, err)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req traceBody
	if jerr := unmarshalNumber(body, &req); jerr != nil {
		writeError(w, serr.New(serr.Invalid, "server: bad request body: %v", jerr))
		return
	}
	if err := c.enter(); err != nil {
		writeError(w, err)
		return
	}
	defer c.exit()

	p := sess.placementOf(name)
	if p == nil || !p.scattered {
		// Home-shard result (or a name the coordinator never placed — e.g. a
		// trace result the home shard retained itself): forward untouched and
		// let the shard answer, including its own 404/410 bookkeeping.
		c.proxied.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
		defer cancel()
		path := "/v1/sessions/" + sess.shardIDs[sess.home] + "/results/" + name + "/trace"
		res, err := c.nodes[sess.home].invoke(ctx, http.MethodPost, path, body, "application/json")
		if err != nil {
			c.shardTimeouts.Add(1)
			writeError(w, err)
			return
		}
		writeShardReply(w, res)
		return
	}

	out, err := c.runScatteredTrace(r.Context(), sess, name, p, req)
	if err != nil {
		writeError(w, err)
		return
	}
	c.mergedTraces.Add(1)
	writeJSON(w, http.StatusOK, out)
}

// runScatteredTrace validates, routes, and gathers a trace against a
// scattered placement.
func (c *Coordinator) runScatteredTrace(ctx context.Context, sess *session, name string, p *placement, req traceBody) (*wireResult, error) {
	backward := false
	switch strings.ToLower(req.Direction) {
	case "backward":
		backward = true
	case "forward":
	default:
		return nil, serr.New(serr.Invalid, "server: direction must be backward or forward, got %q", req.Direction)
	}
	if req.Table == "" {
		return nil, serr.New(serr.Invalid, "server: trace needs a table")
	}
	if req.Rids != nil && req.SeedWhere != "" {
		return nil, serr.New(serr.Invalid, "server: rids and seed_where are mutually exclusive")
	}
	if req.Table != p.table {
		// A scattered capture records lineage to the sharded table per shard.
		// Tracing into a REPLICATED base relation would gather each shard's
		// rids over the same full copy — overlapping lists whose merged order
		// no longer matches a single node's — so it is fenced, not wrong.
		return nil, serr.New(serr.Unsupported,
			"shard: traces against a scattered result must address the sharded table %q, not %q", p.table, req.Table)
	}
	if req.Retain != "" {
		return nil, serr.New(serr.Unsupported,
			"shard: retaining a trace of a scattered result is not supported; re-run the consuming query as a retained base query")
	}
	for _, a := range req.Aggs {
		fn, err := parseAggFn(a.Fn)
		if err != nil {
			return nil, err
		}
		if fn == ops.CountDistinct {
			return nil, serr.New(serr.Unsupported, "shard: COUNT(DISTINCT) does not decompose across shards; not supported")
		}
	}
	params, err := paramsOf(req.Params)
	if err != nil {
		return nil, err
	}
	if backward {
		return c.backwardScattered(ctx, sess, name, p, req, params)
	}
	return c.forwardScattered(ctx, sess, name, p, req, params)
}

// seedSlots resolves a backward trace's seeds to GLOBAL output slots, in
// seed order: explicit rids validated against the merged output's row count,
// a seed predicate evaluated over the merged output (slot order), or — with
// neither — every slot (the zero-seed "trace everything" expansion the
// engine itself uses). The parsed seed predicate is returned alongside so
// the scan-decision mirror can inspect its columns without re-parsing.
func (p *placement) seedSlots(req traceBody, params expr.Params) ([]int, expr.Expr, error) {
	if req.Rids != nil {
		slots := make([]int, len(req.Rids))
		for i, v := range req.Rids {
			if v < 0 || v >= int64(p.merged.N) {
				return nil, nil, serr.New(serr.Invalid,
					"server: seed rid %d out of range [0,%d) for result output rows", v, p.merged.N)
			}
			slots[i] = int(v)
		}
		return slots, nil, nil
	}
	if req.SeedWhere != "" {
		pred, err := sql.ParseExpr(req.SeedWhere)
		if err != nil {
			return nil, nil, err
		}
		rel, err := relationOf("merged", p.merged.Columns, p.merged.Types, p.merged.Rows)
		if err != nil {
			return nil, nil, err
		}
		cp, err := expr.CompilePred(pred, rel, params)
		if err != nil {
			return nil, nil, serr.New(serr.Invalid, "server: trace seed predicate: %v", err)
		}
		var slots []int
		for i := 0; i < rel.N; i++ {
			if cp(int32(i)) {
				slots = append(slots, i)
			}
		}
		if slots == nil {
			slots = []int{}
		}
		return slots, pred, nil
	}
	all := make([]int, p.merged.N)
	for i := range all {
		all[i] = i
	}
	return all, nil, nil
}

// backwardPath resolves which trace path answers a backward trace of this
// placement: "eager" (captured index, per-seed expansion) or "lazy" (plan
// re-execution, scan-collapsible). A per-trace strategy forces it; otherwise
// the placement's resolved capture strategy routes — hybrid captures the
// backward direction eagerly. "" means unknowable: the placement ran under
// strategy auto, whose resolution reads per-node runtime counters.
func (p *placement) backwardPath(reqStrategy string) string {
	switch strings.ToLower(reqStrategy) {
	case "eager":
		return "eager"
	case "lazy":
		return "lazy"
	}
	switch p.strategy {
	case "lazy":
		return "lazy"
	case "eager", "hybrid":
		return "eager"
	}
	return ""
}

// seedPredOnKeys mirrors the optimizer's seed-predicate precondition for the
// scan rewrite: every column the predicate reads must be a group key of the
// traced query AND a column of the traced base relation.
func (p *placement) seedPredOnKeys(seedPred expr.Expr) bool {
	if seedPred == nil {
		return true
	}
	for _, col := range expr.Columns(seedPred) {
		if !containsStr(p.keys, col) || p.tbl.rel.Schema.Col(col) < 0 {
			return false
		}
	}
	return true
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// shardTraceBody renders the per-shard request: same trace, shard-local
// seeds. marshal cannot fail on these field types.
func shardTraceBody(req traceBody, rids []int64, keepWhere bool) []byte {
	out := traceBody{
		Direction: req.Direction,
		Table:     req.Table,
		Rids:      rids,
		GroupBy:   req.GroupBy,
		Aggs:      req.Aggs,
		Capture:   req.Capture,
		Compress:  req.Compress,
		Params:    req.Params,
		Strategy:  req.Strategy,
	}
	if keepWhere {
		out.Where = req.Where
	}
	b, _ := json.Marshal(out)
	return b
}

// tracePath renders a shard's trace endpoint for the session's peer id.
func (sess *session) tracePath(shard int, name string) string {
	return "/v1/sessions/" + sess.shardIDs[shard] + "/results/" + name + "/trace"
}

// emptyTrace answers a zero-seed trace by asking one shard for its (empty)
// result — the cheapest way to produce the exactly-right output schema for
// every trace shape without re-deriving it coordinator-side.
func (c *Coordinator) emptyTrace(ctx context.Context, sess *session, name string, req traceBody, keepWhere bool) (*wireResult, error) {
	parts, err := c.scatter(ctx, []int{0}, func(int) (string, string, []byte) {
		return http.MethodPost, sess.tracePath(0, name), shardTraceBody(req, []int64{}, keepWhere)
	})
	if err != nil {
		return nil, err
	}
	return emptyLike(parts[0]), nil
}

// backwardScattered gathers a backward trace. It first mirrors the engine's
// own path decision — made per node by exec.backwardRids with LOCAL numbers —
// using GLOBAL ones:
//
//   - the per-seed index path expands every seed's captured rid list in seed
//     order. Coordinator equivalent: one scatter wave per seed to the shards
//     whose partial contributed to the seed's merged group, cells
//     concatenated seed-major shard-minor (shard slices are rid-contiguous
//     in shard order, so that IS the single node's capture append order).
//   - the scan path — taken when the plan shape collapses (placement.scanOK)
//     and the seeds cover at least half the output (eager), or always on the
//     lazy path — answers with one filtered scan of the base table in rid
//     order. Coordinator equivalent: evaluate the folded predicate over the
//     global base relation it already holds, no shard round-trip at all.
//
// Consuming traces (group_by + aggs) fold per-seed cells through the
// two-phase grouped merge; when the single node would have scanned, the
// merged groups are re-ranked into scan discovery order (merge values are
// order-insensitive, first-appearance order is not).
func (c *Coordinator) backwardScattered(ctx context.Context, sess *session, name string, p *placement, req traceBody, params expr.Params) (*wireResult, error) {
	// Join placements (!scanOK) always take the per-seed path, and it is
	// order-exact for them: the analyzer admits joins only with the sharded
	// table as the probe side, so each group's captured lineage list is its
	// probe rows in slice rid order — shard-minor concatenation IS the single
	// node's capture order. No scan rewrite exists for the join shape on a
	// single node either, which also makes the path strategy-independent
	// (auto included).
	slots, seedPred, err := p.seedSlots(req, params)
	if err != nil {
		return nil, err
	}
	if len(slots) == 0 {
		return c.emptyTrace(ctx, sess, name, req, true)
	}

	// Scan-vs-index mirror. With a single seed the two paths are
	// row-identical (one group's captured list is its rows in rid order), so
	// only multi-seed traces need the decision — which keeps single-seed
	// crossfilter interactions on the cheap per-seed path under every
	// strategy, including auto.
	useScan, path := false, ""
	if p.scanOK && req.Rids == nil && p.seedPredOnKeys(seedPred) && len(slots) >= 2 {
		path = p.backwardPath(req.Strategy)
		switch {
		case 2*len(slots) >= p.merged.N:
			useScan = true // eager and lazy both scan at this coverage
		case path == "lazy":
			useScan = true // the lazy rewrite scans unconditionally
		case path == "":
			return nil, serr.New(serr.Unsupported,
				"shard: this trace's row order depends on strategy auto's per-node cost decision; request an explicit strategy or seed fewer rows")
		}
	}
	if useScan {
		return c.scanBackward(ctx, sess, name, p, req, seedPred, params, slots, path)
	}

	cells, err := c.perSeedCells(ctx, sess, name, p, req, slots)
	if err != nil {
		return nil, err
	}
	if len(req.GroupBy) > 0 || len(req.Aggs) > 0 {
		merged, _, err := mergeGrouped(cells, len(req.GroupBy), reqAggs(req))
		return merged, err
	}
	return concatCells(cells), nil
}

// perSeedCells runs one scatter wave per seed: a shard's reply carries no
// per-seed boundaries, so batching a shard's seeds into one request would
// lose the seed-major interleave a single node produces. Crossfilter-style
// interactions seed one output row, so the common case is exactly one wave.
func (c *Coordinator) perSeedCells(ctx context.Context, sess *session, name string, p *placement, req traceBody, slots []int) ([]*wireResult, error) {
	var cells []*wireResult
	for _, g := range slots {
		var participants []int
		for s, local := range p.gm.globalToLocal[g] {
			if local >= 0 {
				participants = append(participants, s)
			}
		}
		parts, err := c.scatter(ctx, participants, func(s int) (string, string, []byte) {
			local := int64(p.gm.globalToLocal[g][s])
			return http.MethodPost, sess.tracePath(s, name), shardTraceBody(req, []int64{local}, true)
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, parts...)
	}
	return cells, nil
}

func reqAggs(req traceBody) []ops.AggFn {
	aggs := make([]ops.AggFn, len(req.Aggs))
	for i, a := range req.Aggs {
		aggs[i], _ = parseAggFn(a.Fn) // validated in runScatteredTrace
	}
	return aggs
}

// scanBackward answers a backward trace the way a single node's scan rewrite
// does: the traced rows are the base rows satisfying the folded predicate
// (statement filters ∧ seed predicate ∧ trace filter), in rid order. The
// coordinator holds the global base relation — it is the ingest point — so a
// bare trace needs no shard round-trip; a consuming trace still gathers its
// aggregate VALUES from per-seed shard cells (two-phase merge) and takes only
// its row ORDER from the scan's first-appearance sequence.
func (c *Coordinator) scanBackward(ctx context.Context, sess *session, name string, p *placement, req traceBody, seedPred expr.Expr, params expr.Params, slots []int, path string) (*wireResult, error) {
	conj := p.scanPreds
	if seedPred != nil {
		conj = append(conj[:len(conj):len(conj)], seedPred)
	}
	if req.Where != "" {
		wp, err := sql.ParseExpr(req.Where)
		if err != nil {
			return nil, err
		}
		conj = append(conj[:len(conj):len(conj)], wp)
	}
	keep, err := compileConj(conj, p.tbl.rel, params)
	if err != nil {
		return nil, err
	}

	if len(req.GroupBy) == 0 && len(req.Aggs) == 0 {
		out := wireRowsOf(p.tbl.rel, keep)
		out.StrategyUsed = path
		return out, nil
	}

	// Consuming: correct values from the per-seed merge, scan-order rows.
	cells, err := c.perSeedCells(ctx, sess, name, p, req, slots)
	if err != nil {
		return nil, err
	}
	merged, _, err := mergeGrouped(cells, len(req.GroupBy), reqAggs(req))
	if err != nil {
		return nil, err
	}
	gbCols := make([]int, len(req.GroupBy))
	for i, col := range req.GroupBy {
		ci := p.tbl.rel.Schema.Col(col)
		if ci < 0 {
			return nil, serr.New(serr.Invalid, "server: unknown column %q", col)
		}
		gbCols[i] = ci
	}
	rank := map[string]int{}
	for r := 0; r < p.tbl.rel.N; r++ {
		if keep != nil && !keep(r) {
			continue
		}
		k := relKey(p.tbl.rel, gbCols, r)
		if _, ok := rank[k]; !ok {
			rank[k] = len(rank)
		}
	}
	reorderGrouped(merged, len(req.GroupBy), rank)
	return merged, nil
}

// compileConj compiles the conjunction of preds over rel; nil means
// keep-everything.
func compileConj(preds []expr.Expr, rel *storage.Relation, params expr.Params) (func(int) bool, error) {
	var conj expr.Expr
	for _, e := range preds {
		if e == nil {
			continue
		}
		if conj == nil {
			conj = e
		} else {
			conj = expr.And{L: conj, R: e}
		}
	}
	if conj == nil {
		return nil, nil
	}
	cp, err := expr.CompilePred(conj, rel, params)
	if err != nil {
		return nil, serr.New(serr.Invalid, "server: trace filter: %v", err)
	}
	return func(r int) bool { return cp(int32(r)) }, nil
}

// wireRowsOf renders the rows of rel satisfying keep (nil = all) as a wire
// result, in rid order — the scan rewrite's output shape.
func wireRowsOf(rel *storage.Relation, keep func(int) bool) *wireResult {
	out := &wireResult{Rows: [][]any{}}
	for _, f := range rel.Schema {
		out.Columns = append(out.Columns, f.Name)
		out.Types = append(out.Types, typeName(f.Type))
	}
	for r := 0; r < rel.N; r++ {
		if keep != nil && !keep(r) {
			continue
		}
		row := make([]any, len(rel.Schema))
		for ci, f := range rel.Schema {
			switch f.Type {
			case storage.TInt:
				row[ci] = rel.Int(ci, r)
			case storage.TFloat:
				row[ci] = rel.Float(ci, r)
			case storage.TString:
				row[ci] = rel.Str(ci, r)
			}
		}
		out.Rows = append(out.Rows, row)
		out.N++
	}
	return out
}

// relKey renders the group-identity string of a base row's key columns in
// exactly encodeKey's format, so ranks computed from the base relation match
// keys computed from merged wire rows.
func relKey(rel *storage.Relation, cols []int, r int) string {
	var b strings.Builder
	for _, ci := range cols {
		switch rel.Schema[ci].Type {
		case storage.TInt:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(rel.Int(ci, r), 10))
		case storage.TFloat:
			b.WriteByte('f')
			b.WriteString(strconv.FormatUint(math.Float64bits(rel.Float(ci, r)), 16))
		case storage.TString:
			s := rel.Str(ci, r)
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(s)))
			b.WriteByte(':')
			b.WriteString(s)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// reorderGrouped re-ranks a merged consuming result's rows (and group
// counts) into the given first-appearance order. Keys absent from the rank
// map — which a correct merge never produces — keep their relative order at
// the end rather than dropping rows.
func reorderGrouped(merged *wireResult, nKeys int, rank map[string]int) {
	type slot struct {
		row  []any
		gc   int64
		rank int
	}
	slotted := make([]slot, len(merged.Rows))
	for i, row := range merged.Rows {
		r, ok := rank[encodeKey(row[:nKeys])]
		if !ok {
			r = len(rank) + i
		}
		var gc int64
		if i < len(merged.GroupCounts) {
			gc = merged.GroupCounts[i]
		}
		slotted[i] = slot{row: row, gc: gc, rank: r}
	}
	sort.SliceStable(slotted, func(a, b int) bool { return slotted[a].rank < slotted[b].rank })
	for i, s := range slotted {
		merged.Rows[i] = s.row
		if i < len(merged.GroupCounts) {
			merged.GroupCounts[i] = s.gc
		}
	}
}

// concatCells concatenates non-consuming trace cells in order.
func concatCells(cells []*wireResult) *wireResult {
	out := &wireResult{Columns: cells[0].Columns, Types: cells[0].Types, Rows: [][]any{}}
	strategy, uniform := cells[0].StrategyUsed, true
	for _, cell := range cells {
		out.Rows = append(out.Rows, cell.Rows...)
		out.N += cell.N
		if cell.StrategyUsed != strategy {
			uniform = false
		}
	}
	if uniform {
		out.StrategyUsed = strategy
	}
	return out
}

// forwardScattered gathers a forward trace: seeds address the sharded base
// table's GLOBAL rid space, translate to shard-local rids, and route only to
// the owning shard (the seed-range routing of the issue — non-owning shards
// never see the request). Each shard answers its partial output rows for its
// seeds in seed order; the coordinator maps every reply row to the merged
// global row by group identity and applies the consuming filter against the
// MERGED values, because the shard-local partial aggregates are not the
// values a single node's filter would see.
func (c *Coordinator) forwardScattered(ctx context.Context, sess *session, name string, p *placement, req traceBody, params expr.Params) (*wireResult, error) {
	if len(req.GroupBy) > 0 || len(req.Aggs) > 0 {
		return nil, serr.New(serr.Unsupported,
			"shard: consuming forward traces of a scattered result are not supported")
	}
	// The placement snapshot, not the live book: seeds address the
	// capture-time relation, which survives a re-ingest the same way a single
	// node's bound trace does.
	t := p.tbl

	// Resolve global base-row seeds in seed order.
	var seeds []int
	switch {
	case req.Rids != nil:
		seeds = make([]int, len(req.Rids))
		for i, v := range req.Rids {
			if v < 0 || v >= int64(t.rel.N) {
				return nil, serr.New(serr.Invalid,
					"server: seed rid %d out of range [0,%d) for base rows of %s", v, t.rel.N, p.table)
			}
			seeds[i] = int(v)
		}
	case req.SeedWhere != "":
		pred, err := sql.ParseExpr(req.SeedWhere)
		if err != nil {
			return nil, err
		}
		cp, err := expr.CompilePred(pred, t.rel, params)
		if err != nil {
			return nil, serr.New(serr.Invalid, "server: trace seed predicate: %v", err)
		}
		for i := 0; i < t.rel.N; i++ {
			if cp(int32(i)) {
				seeds = append(seeds, i)
			}
		}
		if seeds == nil {
			seeds = []int{}
		}
	default:
		seeds = make([]int, t.rel.N)
		for i := range seeds {
			seeds[i] = i
		}
	}
	if len(seeds) == 0 {
		return c.emptyTrace(ctx, sess, name, req, false)
	}

	// Optional consuming filter, evaluated over the MERGED output rows:
	// precompute a per-slot mask once.
	var mask []bool
	if req.Where != "" {
		pred, err := sql.ParseExpr(req.Where)
		if err != nil {
			return nil, err
		}
		rel, err := relationOf("merged", p.merged.Columns, p.merged.Types, p.merged.Rows)
		if err != nil {
			return nil, err
		}
		cp, err := expr.CompilePred(pred, rel, params)
		if err != nil {
			return nil, serr.New(serr.Invalid, "server: trace filter: %v", err)
		}
		mask = make([]bool, rel.N)
		for i := 0; i < rel.N; i++ {
			mask[i] = cp(int32(i))
		}
	}

	// Maximal same-owner seed runs, one shard request per run: the shard
	// answers its seeds' reached rows in seed order, so run-order concat is
	// the global seed-order concat.
	out := &wireResult{Columns: p.merged.Columns, Types: p.merged.Types, Rows: [][]any{}}
	strategy, uniform, first := "", true, true
	for i := 0; i < len(seeds); {
		owner := t.ownerOf(seeds[i])
		j := i
		var locals []int64
		for ; j < len(seeds) && t.ownerOf(seeds[j]) == owner; j++ {
			locals = append(locals, int64(seeds[j]-t.starts[owner]))
		}
		parts, err := c.scatter(ctx, []int{owner}, func(int) (string, string, []byte) {
			return http.MethodPost, sess.tracePath(owner, name), shardTraceBody(req, locals, false)
		})
		if err != nil {
			return nil, err
		}
		cell := parts[0]
		for _, row := range cell.Rows {
			if len(row) < p.nKeys {
				return nil, serr.New(serr.Internal, "shard: forward trace row narrower than the group key")
			}
			slot, ok := p.gm.keyToGlobal[encodeKey(row[:p.nKeys])]
			if !ok {
				return nil, serr.New(serr.Internal, "shard: forward trace reached a group absent from the merged result")
			}
			if mask != nil && !mask[slot] {
				continue
			}
			out.Rows = append(out.Rows, p.merged.Rows[slot])
			out.N++
		}
		if first {
			strategy, first = cell.StrategyUsed, false
		} else if cell.StrategyUsed != strategy {
			uniform = false
		}
		i = j
	}
	if uniform && !first {
		out.StrategyUsed = strategy
	}
	return out, nil
}
