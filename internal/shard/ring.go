package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard ids: each shard owns vnodes
// points on a 32-bit circle, and a key's owner is the shard of the first
// point at or after the key's hash. Session placement uses it so a session's
// replicated-only work always lands on the same "home" shard (its retained
// captures live where its traces arrive), and so home assignments stay
// stable — adding a shard moves only ~1/n of the sessions instead of
// reshuffling every modulo bucket.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	h     uint32
	shard int
}

// vnodesPerShard balances key ownership across shards: with a single point
// per shard the arc lengths (and so the session load) can skew badly; 64
// virtual points keep the imbalance within a few percent.
const vnodesPerShard = 64

func newRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*vnodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{h: hash32(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash collisions between vnodes are broken by shard id so the ring
		// order (and therefore every ownership decision) is deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// owner returns the shard owning key: the first ring point clockwise from
// the key's hash, wrapping at the top of the circle.
func (r *ring) owner(key string) int {
	h := hash32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hash32(s string) uint32 {
	f := fnv.New32a()
	f.Write([]byte(s))
	return f.Sum32()
}
