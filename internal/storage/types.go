// Package storage provides the in-memory storage substrate of the engine:
// typed columns, schemas, relations addressed by record id (rid), and a
// catalog with key metadata. Relations are stored column-major for compact
// memory layout, while execution remains row-oriented (operators iterate rid
// by rid), matching the paper's single-threaded row-oriented model.
package storage

import "fmt"

// Type identifies the runtime type of a column.
type Type uint8

const (
	// TInt is a 64-bit signed integer column. Dates are stored as TInt
	// (days since 1970-01-01).
	TInt Type = iota
	// TFloat is a 64-bit IEEE float column.
	TFloat
	// TString is a string column.
	TString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Field is a named, typed attribute of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// Col returns the index of the named field, or -1 if absent.
func (s Schema) Col(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the index of the named field and panics if absent.
// It is intended for internal plan construction where the field is known
// to exist; user-facing paths validate first.
func (s Schema) MustCol(name string) int {
	c := s.Col(name)
	if c < 0 {
		panic(fmt.Sprintf("storage: schema has no column %q", name))
	}
	return c
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}
