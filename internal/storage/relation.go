package storage

import "fmt"

// Column holds the data of one attribute. Exactly one of the slices is
// non-nil, according to the field's Type. Keeping concrete typed slices (as
// opposed to []any) is what lets operator inner loops run without boxing or
// interface dispatch — the Go analogue of the paper's compiled tight loops.
type Column struct {
	Ints   []int64
	Floats []float64
	Strs   []string
}

// Relation is an in-memory table. Records are addressed by rid (row index in
// [0, N)); lineage indexes store rids and lookups index directly into the
// column slices.
type Relation struct {
	Name   string
	Schema Schema
	Cols   []Column
	N      int
}

// NewRelation allocates a relation with capacity for n rows in every column.
// The rows are zero-valued; generators fill the slices directly.
func NewRelation(name string, schema Schema, n int) *Relation {
	r := &Relation{Name: name, Schema: schema, Cols: make([]Column, len(schema)), N: n}
	for i, f := range schema {
		switch f.Type {
		case TInt:
			r.Cols[i].Ints = make([]int64, n)
		case TFloat:
			r.Cols[i].Floats = make([]float64, n)
		case TString:
			r.Cols[i].Strs = make([]string, n)
		}
	}
	return r
}

// NewEmpty allocates a relation with zero rows and nil column slices, ready
// for AppendRow-style construction.
func NewEmpty(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema, Cols: make([]Column, len(schema))}
}

// Int returns the integer value at (col, rid).
func (r *Relation) Int(col, rid int) int64 { return r.Cols[col].Ints[rid] }

// Float returns the float value at (col, rid).
func (r *Relation) Float(col, rid int) float64 { return r.Cols[col].Floats[rid] }

// Str returns the string value at (col, rid).
func (r *Relation) Str(col, rid int) string { return r.Cols[col].Strs[rid] }

// Value returns the value at (col, rid) boxed as any. Intended for tests,
// result rendering and slow paths only.
func (r *Relation) Value(col, rid int) any {
	switch r.Schema[col].Type {
	case TInt:
		return r.Cols[col].Ints[rid]
	case TFloat:
		return r.Cols[col].Floats[rid]
	case TString:
		return r.Cols[col].Strs[rid]
	}
	return nil
}

// AppendRow appends one row given as boxed values in schema order. Intended
// for tests and small fixtures; bulk loads write column slices directly.
func (r *Relation) AppendRow(vals ...any) {
	if len(vals) != len(r.Schema) {
		panic(fmt.Sprintf("storage: AppendRow got %d values for %d columns", len(vals), len(r.Schema)))
	}
	for i, f := range r.Schema {
		switch f.Type {
		case TInt:
			switch v := vals[i].(type) {
			case int64:
				r.Cols[i].Ints = append(r.Cols[i].Ints, v)
			case int:
				r.Cols[i].Ints = append(r.Cols[i].Ints, int64(v))
			default:
				panic(fmt.Sprintf("storage: column %s expects int, got %T", f.Name, vals[i]))
			}
		case TFloat:
			switch v := vals[i].(type) {
			case float64:
				r.Cols[i].Floats = append(r.Cols[i].Floats, v)
			case int:
				r.Cols[i].Floats = append(r.Cols[i].Floats, float64(v))
			default:
				panic(fmt.Sprintf("storage: column %s expects float, got %T", f.Name, vals[i]))
			}
		case TString:
			s, ok := vals[i].(string)
			if !ok {
				panic(fmt.Sprintf("storage: column %s expects string, got %T", f.Name, vals[i]))
			}
			r.Cols[i].Strs = append(r.Cols[i].Strs, s)
		}
	}
	r.N++
}

// Row returns the boxed values of one row in schema order (tests/rendering).
func (r *Relation) Row(rid int) []any {
	out := make([]any, len(r.Schema))
	for c := range r.Schema {
		out[c] = r.Value(c, rid)
	}
	return out
}

// Gather materializes the subset of rows identified by rids (in order) into a
// new relation. It is the physical realization of an indexed secondary scan:
// lineage query results are rid sets, and consuming queries gather them.
func (r *Relation) Gather(name string, rids []int32) *Relation {
	out := NewRelation(name, r.Schema, len(rids))
	for c, f := range r.Schema {
		switch f.Type {
		case TInt:
			src, dst := r.Cols[c].Ints, out.Cols[c].Ints
			for i, rid := range rids {
				dst[i] = src[rid]
			}
		case TFloat:
			src, dst := r.Cols[c].Floats, out.Cols[c].Floats
			for i, rid := range rids {
				dst[i] = src[rid]
			}
		case TString:
			src, dst := r.Cols[c].Strs, out.Cols[c].Strs
			for i, rid := range rids {
				dst[i] = src[rid]
			}
		}
	}
	return out
}

// MemBytes approximates the relation's resident column memory: fixed-width
// columns at their slice footprint, strings at header plus byte length. The
// server's session registry uses it (with Capture.MemBytes) to decide what
// LRU eviction reclaims.
func (r *Relation) MemBytes() int64 {
	var total int64
	for _, c := range r.Cols {
		total += int64(len(c.Ints))*8 + int64(len(c.Floats))*8
		if c.Strs != nil {
			total += int64(len(c.Strs)) * 16 // string headers
			for _, s := range c.Strs {
				total += int64(len(s))
			}
		}
	}
	return total
}

// Slice returns the contiguous row range [lo, hi) as a new relation sharing
// the underlying column arrays (zero-copy). Row i of the slice is row lo+i of
// r — the rid-range partitioning the shard tier hands each shard node, so a
// shard-local rid translates to a global rid by adding lo.
func (r *Relation) Slice(name string, lo, hi int) *Relation {
	if lo < 0 || hi < lo || hi > r.N {
		panic(fmt.Sprintf("storage: Slice [%d,%d) out of range for %d rows", lo, hi, r.N))
	}
	out := &Relation{Name: name, Schema: r.Schema, Cols: make([]Column, len(r.Cols)), N: hi - lo}
	for c, col := range r.Cols {
		switch {
		case col.Ints != nil:
			out.Cols[c].Ints = col.Ints[lo:hi]
		case col.Floats != nil:
			out.Cols[c].Floats = col.Floats[lo:hi]
		case col.Strs != nil:
			out.Cols[c].Strs = col.Strs[lo:hi]
		}
	}
	return out
}

// Project returns a new relation with only the given columns, sharing the
// underlying column slices (zero-copy). Bag-semantics projection needs no
// lineage: output rid i is input rid i in both directions.
func (r *Relation) Project(name string, cols []int) *Relation {
	out := &Relation{Name: name, Schema: make(Schema, len(cols)), Cols: make([]Column, len(cols)), N: r.N}
	for i, c := range cols {
		out.Schema[i] = r.Schema[c]
		out.Cols[i] = r.Cols[c]
	}
	return out
}
