package storage

import (
	"fmt"
	"reflect"
	"testing"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: TInt},
		{Name: "v", Type: TFloat},
		{Name: "name", Type: TString},
	}
}

func TestSchemaCol(t *testing.T) {
	s := testSchema()
	if got := s.Col("id"); got != 0 {
		t.Errorf("Col(id) = %d, want 0", got)
	}
	if got := s.Col("name"); got != 2 {
		t.Errorf("Col(name) = %d, want 2", got)
	}
	if got := s.Col("missing"); got != -1 {
		t.Errorf("Col(missing) = %d, want -1", got)
	}
}

func TestSchemaMustColPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing column should panic")
		}
	}()
	testSchema().MustCol("missing")
}

func TestSchemaClone(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c[0].Name = "changed"
	if s[0].Name != "id" {
		t.Error("Clone should not alias the original schema")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{TInt: "INT", TFloat: "FLOAT", TString: "STRING"}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestNewRelationAllocates(t *testing.T) {
	r := NewRelation("t", testSchema(), 5)
	if r.N != 5 {
		t.Fatalf("N = %d, want 5", r.N)
	}
	if len(r.Cols[0].Ints) != 5 || len(r.Cols[1].Floats) != 5 || len(r.Cols[2].Strs) != 5 {
		t.Fatal("columns not allocated to n rows")
	}
	if r.Cols[0].Floats != nil || r.Cols[1].Ints != nil {
		t.Fatal("wrong-typed slices should stay nil")
	}
}

func TestAppendRowAndAccessors(t *testing.T) {
	r := NewEmpty("t", testSchema())
	r.AppendRow(1, 2.5, "a")
	r.AppendRow(int64(2), 3.5, "b")
	if r.N != 2 {
		t.Fatalf("N = %d, want 2", r.N)
	}
	if r.Int(0, 1) != 2 {
		t.Errorf("Int(0,1) = %d, want 2", r.Int(0, 1))
	}
	if r.Float(1, 0) != 2.5 {
		t.Errorf("Float(1,0) = %v, want 2.5", r.Float(1, 0))
	}
	if r.Str(2, 1) != "b" {
		t.Errorf("Str(2,1) = %q, want b", r.Str(2, 1))
	}
	if got := r.Row(0); !reflect.DeepEqual(got, []any{int64(1), 2.5, "a"}) {
		t.Errorf("Row(0) = %v", got)
	}
}

func TestAppendRowIntToFloatCoercion(t *testing.T) {
	r := NewEmpty("t", Schema{{Name: "f", Type: TFloat}})
	r.AppendRow(3)
	if r.Float(0, 0) != 3.0 {
		t.Errorf("int literal should coerce into float column")
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	r := NewEmpty("t", testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong arity should panic")
		}
	}()
	r.AppendRow(1, 2.5)
}

func TestAppendRowTypePanics(t *testing.T) {
	r := NewEmpty("t", testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong type should panic")
		}
	}()
	r.AppendRow("not-an-int", 2.5, "a")
}

func TestGather(t *testing.T) {
	r := NewEmpty("t", testSchema())
	for i := 0; i < 5; i++ {
		r.AppendRow(i, float64(i)/2, string(rune('a'+i)))
	}
	g := r.Gather("sub", []int32{4, 0, 2})
	if g.N != 3 {
		t.Fatalf("N = %d, want 3", g.N)
	}
	wantIds := []int64{4, 0, 2}
	if !reflect.DeepEqual(g.Cols[0].Ints, wantIds) {
		t.Errorf("gathered ids = %v, want %v", g.Cols[0].Ints, wantIds)
	}
	if g.Str(2, 0) != "e" {
		t.Errorf("gathered str = %q, want e", g.Str(2, 0))
	}
}

func TestProjectZeroCopy(t *testing.T) {
	r := NewEmpty("t", testSchema())
	r.AppendRow(1, 2.5, "a")
	p := r.Project("p", []int{2, 0})
	if len(p.Schema) != 2 || p.Schema[0].Name != "name" || p.Schema[1].Name != "id" {
		t.Fatalf("projected schema = %v", p.Schema)
	}
	if p.N != 1 || p.Str(0, 0) != "a" || p.Int(1, 0) != 1 {
		t.Fatal("projected values wrong")
	}
	// Zero copy: mutating the base shows through the projection.
	r.Cols[0].Ints[0] = 42
	if p.Int(1, 0) != 42 {
		t.Error("Project should share column storage")
	}
}

func TestValueBoxed(t *testing.T) {
	r := NewEmpty("t", testSchema())
	r.AppendRow(7, 1.5, "x")
	if r.Value(0, 0) != int64(7) || r.Value(1, 0) != 1.5 || r.Value(2, 0) != "x" {
		t.Errorf("Value boxed accessors wrong: %v %v %v", r.Value(0, 0), r.Value(1, 0), r.Value(2, 0))
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	r := NewEmpty("orders", testSchema())
	c.Register(r)
	got, err := c.Relation("orders")
	if err != nil || got != r {
		t.Fatalf("Relation(orders) = %v, %v", got, err)
	}
	if _, err := c.Relation("nope"); err == nil {
		t.Fatal("Relation(nope) should error")
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"orders"}) {
		t.Errorf("Names = %v", names)
	}
}

func TestCatalogMustRelationPanics(t *testing.T) {
	c := NewCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation on unknown table should panic")
		}
	}()
	c.MustRelation("nope")
}

func TestCatalogPKFK(t *testing.T) {
	c := NewCatalog()
	c.SetPrimaryKey("gids", "id")
	c.AddForeignKey(ForeignKey{ChildTable: "zipf", ChildColumn: "z", ParentTable: "gids", ParentColumn: "id"})

	isPKFK, pkLeft := c.IsPKFK("gids", "id", "zipf", "z")
	if !isPKFK || !pkLeft {
		t.Errorf("IsPKFK(gids.id, zipf.z) = %v, %v; want true, true", isPKFK, pkLeft)
	}
	isPKFK, pkLeft = c.IsPKFK("zipf", "z", "gids", "id")
	if !isPKFK || pkLeft {
		t.Errorf("IsPKFK(zipf.z, gids.id) = %v, %v; want true, false", isPKFK, pkLeft)
	}
	if got, _ := c.IsPKFK("zipf", "z", "zipf", "z"); got {
		t.Error("self join on fk should not be pk-fk")
	}
	if pk := c.PrimaryKey("gids"); pk != "id" {
		t.Errorf("PrimaryKey(gids) = %q", pk)
	}
}

func TestUniqueIntColumnMemoized(t *testing.T) {
	c := NewCatalog()
	rel := NewEmpty("u", Schema{{Name: "a", Type: TInt}, {Name: "d", Type: TInt}, {Name: "s", Type: TString}})
	for i := 0; i < 10; i++ {
		rel.AppendRow(i, i%3, "x")
	}
	c.Register(rel)
	if !c.UniqueIntColumn(rel, "a") {
		t.Fatal("distinct column reported non-unique")
	}
	if c.UniqueIntColumn(rel, "d") {
		t.Fatal("duplicated column reported unique")
	}
	if c.UniqueIntColumn(rel, "s") || c.UniqueIntColumn(rel, "nope") {
		t.Fatal("non-int/missing columns must report false")
	}
	// Memoized verdicts survive (same pointer) and repeated calls agree.
	if !c.UniqueIntColumn(rel, "a") || c.UniqueIntColumn(rel, "d") {
		t.Fatal("memoized verdicts changed")
	}
}

// Replacing a relation must drop its key metadata: the old declarations
// described the old data, and a stale primary key would send joins over the
// new data down the one-match pk-fk specialization even when the new column
// holds duplicates.
func TestRegisterReplacementClearsKeys(t *testing.T) {
	c := NewCatalog()
	mk := func() *Relation {
		r := NewEmpty("t", Schema{{Name: "id", Type: TInt}})
		r.AppendRow(1)
		r.AppendRow(2)
		return r
	}
	child := NewEmpty("u", Schema{{Name: "tid", Type: TInt}})
	c.Register(mk())
	c.Register(child)
	c.SetPrimaryKey("t", "id")
	c.AddForeignKey(ForeignKey{ChildTable: "u", ChildColumn: "tid", ParentTable: "t", ParentColumn: "id"})
	if pk := c.PrimaryKey("t"); pk != "id" {
		t.Fatalf("pk = %q", pk)
	}
	if ok, _ := c.IsPKFK("t", "id", "u", "tid"); !ok {
		t.Fatal("fk not registered")
	}

	// Re-registering the same relation pointer keeps the declarations.
	r := c.MustRelation("t")
	c.Register(r)
	if c.PrimaryKey("t") != "id" {
		t.Fatal("same-pointer re-register dropped the pk")
	}

	// Replacing with new data drops pk and the fks touching the table.
	c.Register(mk())
	if pk := c.PrimaryKey("t"); pk != "" {
		t.Fatalf("stale pk survived replacement: %q", pk)
	}
	if ok, _ := c.IsPKFK("t", "id", "u", "tid"); ok {
		t.Fatal("stale fk survived replacement")
	}
}

func TestRelationSlice(t *testing.T) {
	r := NewEmpty("t", testSchema())
	for i := 0; i < 6; i++ {
		r.AppendRow(i, float64(i)+0.5, fmt.Sprintf("s%d", i))
	}
	s := r.Slice("t", 2, 5)
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	// Row i of the slice is row lo+i of the parent — the shard tier's
	// local→global rid translation.
	for i := 0; i < s.N; i++ {
		if !reflect.DeepEqual(s.Row(i), r.Row(2+i)) {
			t.Fatalf("slice row %d = %v, want parent row %d = %v", i, s.Row(i), 2+i, r.Row(2+i))
		}
	}
	// Zero-copy: the slice aliases the parent's arrays.
	if &s.Cols[0].Ints[0] != &r.Cols[0].Ints[2] {
		t.Fatal("int column was copied, want an alias of the parent array")
	}
	if &s.Cols[2].Strs[0] != &r.Cols[2].Strs[2] {
		t.Fatal("string column was copied, want an alias of the parent array")
	}
	// Empty slices are legal — a shard can hold zero rows of a small table.
	if e := r.Slice("t", 6, 6); e.N != 0 {
		t.Fatalf("empty slice N = %d, want 0", e.N)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	r.Slice("t", 4, 7)
}
