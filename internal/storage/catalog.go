package storage

import (
	"sort"
	"sync"

	"smoke/internal/serr"
)

// ForeignKey records that child.Column references parent.Column, where the
// parent column is a primary key. The SPJA executor uses this metadata to
// pick the pk-fk join specialization (§3.2.4).
type ForeignKey struct {
	ChildTable   string
	ChildColumn  string
	ParentTable  string
	ParentColumn string
}

// Catalog names relations and tracks primary/foreign key metadata. A
// Catalog is safe for concurrent use: lookups from concurrently executing
// queries may race with Register and key-metadata declarations.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	pks  map[string]string // table -> pk column
	fks  []ForeignKey
	uniq map[uniqueKey]bool // memoized column-uniqueness verdicts
}

// uniqueKey identifies a uniqueness verdict. Keying on the relation pointer
// means re-registering a table under the same name naturally invalidates it,
// and keying on the row count invalidates verdicts after AppendRow-style
// growth (in-place value mutation of a registered relation is outside the
// engine's contract — it would also corrupt captured lineage).
type uniqueKey struct {
	rel *Relation
	col string
	n   int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*Relation{}, pks: map[string]string{}, uniq: map[uniqueKey]bool{}}
}

// UniqueIntColumn reports whether the named integer column of rel holds
// pairwise-distinct values, memoizing the linear verification scan per
// (relation, column) — the pk-fk detection rule calls this on every query
// optimization, and relations are immutable once registered. Non-integer or
// missing columns report false.
func (c *Catalog) UniqueIntColumn(rel *Relation, col string) bool {
	k := uniqueKey{rel: rel, col: col, n: rel.N}
	c.mu.RLock()
	v, ok := c.uniq[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = IntColumnUnique(rel, col)
	c.mu.Lock()
	c.uniq[k] = v
	c.mu.Unlock()
	return v
}

// IntColumnUnique reports whether the named integer column of rel holds
// pairwise-distinct values (one uncached linear scan). The catalog's
// UniqueIntColumn memoizes it; callers without a catalog use it directly.
func IntColumnUnique(rel *Relation, col string) bool {
	ci := rel.Schema.Col(col)
	if ci < 0 || rel.Schema[ci].Type != TInt {
		return false
	}
	seen := make(map[int64]struct{}, rel.N)
	for _, v := range rel.Cols[ci].Ints {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Register adds (or replaces) a relation under its own name. Replacing a
// relation drops its memoized uniqueness verdicts (so the old relation's
// column data is not pinned) and its primary/foreign-key declarations —
// key metadata described the old data, and a stale pk would silently send
// joins over the new data down the one-match pk-fk specialization even
// when the new column holds duplicates. Callers re-declare keys after
// re-registering.
func (c *Catalog) Register(r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.rels[r.Name]; ok && old != r {
		for k := range c.uniq {
			if k.rel == old {
				delete(c.uniq, k)
			}
		}
		delete(c.pks, r.Name)
		kept := c.fks[:0]
		for _, fk := range c.fks {
			if fk.ChildTable != r.Name && fk.ParentTable != r.Name {
				kept = append(kept, fk)
			}
		}
		c.fks = kept
	}
	c.rels[r.Name] = r
}

// Relation returns the named relation, or a structured not-found error
// naming known tables (servers map it to 404).
func (c *Catalog) Relation(name string) (*Relation, error) {
	c.mu.RLock()
	r, ok := c.rels[name]
	c.mu.RUnlock()
	if !ok {
		return nil, serr.New(serr.NotFound, "storage: unknown relation %q (have %v)", name, c.Names())
	}
	return r, nil
}

// MustRelation is Relation for internal callers that know the table exists.
func (c *Catalog) MustRelation(name string) *Relation {
	r, err := c.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SetPrimaryKey declares the primary key column of a table.
func (c *Catalog) SetPrimaryKey(table, column string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pks[table] = column
}

// PrimaryKey returns the declared primary key column of a table ("" if none).
func (c *Catalog) PrimaryKey(table string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pks[table]
}

// AddForeignKey declares a pk-fk relationship.
func (c *Catalog) AddForeignKey(fk ForeignKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fks = append(c.fks, fk)
}

// IsPKFK reports whether joining left.leftCol = right.rightCol is a declared
// primary-key/foreign-key join, and if so whether the primary key is on the
// left side.
func (c *Catalog) IsPKFK(left, leftCol, right, rightCol string) (isPKFK, pkOnLeft bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.pks[left] == leftCol {
		for _, fk := range c.fks {
			if fk.ParentTable == left && fk.ParentColumn == leftCol && fk.ChildTable == right && fk.ChildColumn == rightCol {
				return true, true
			}
		}
	}
	if c.pks[right] == rightCol {
		for _, fk := range c.fks {
			if fk.ParentTable == right && fk.ParentColumn == rightCol && fk.ChildTable == left && fk.ChildColumn == leftCol {
				return true, false
			}
		}
	}
	return false, false
}
