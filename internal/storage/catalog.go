package storage

import (
	"fmt"
	"sort"
	"sync"
)

// ForeignKey records that child.Column references parent.Column, where the
// parent column is a primary key. The SPJA executor uses this metadata to
// pick the pk-fk join specialization (§3.2.4).
type ForeignKey struct {
	ChildTable   string
	ChildColumn  string
	ParentTable  string
	ParentColumn string
}

// Catalog names relations and tracks primary/foreign key metadata. A
// Catalog is safe for concurrent use: lookups from concurrently executing
// queries may race with Register and key-metadata declarations.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	pks  map[string]string // table -> pk column
	fks  []ForeignKey
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*Relation{}, pks: map[string]string{}}
}

// Register adds (or replaces) a relation under its own name.
func (c *Catalog) Register(r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[r.Name] = r
}

// Relation returns the named relation, or an error naming known tables.
func (c *Catalog) Relation(name string) (*Relation, error) {
	c.mu.RLock()
	r, ok := c.rels[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown relation %q (have %v)", name, c.Names())
	}
	return r, nil
}

// MustRelation is Relation for internal callers that know the table exists.
func (c *Catalog) MustRelation(name string) *Relation {
	r, err := c.Relation(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SetPrimaryKey declares the primary key column of a table.
func (c *Catalog) SetPrimaryKey(table, column string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pks[table] = column
}

// PrimaryKey returns the declared primary key column of a table ("" if none).
func (c *Catalog) PrimaryKey(table string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pks[table]
}

// AddForeignKey declares a pk-fk relationship.
func (c *Catalog) AddForeignKey(fk ForeignKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fks = append(c.fks, fk)
}

// IsPKFK reports whether joining left.leftCol = right.rightCol is a declared
// primary-key/foreign-key join, and if so whether the primary key is on the
// left side.
func (c *Catalog) IsPKFK(left, leftCol, right, rightCol string) (isPKFK, pkOnLeft bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.pks[left] == leftCol {
		for _, fk := range c.fks {
			if fk.ParentTable == left && fk.ParentColumn == leftCol && fk.ChildTable == right && fk.ChildColumn == rightCol {
				return true, true
			}
		}
	}
	if c.pks[right] == rightCol {
		for _, fk := range c.fks {
			if fk.ParentTable == right && fk.ParentColumn == rightCol && fk.ChildTable == left && fk.ChildColumn == leftCol {
				return true, false
			}
		}
	}
	return false, false
}
