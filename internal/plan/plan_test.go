package plan

import (
	"strings"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func dimFact() (*storage.Relation, *storage.Relation) {
	dim := storage.NewEmpty("dim", storage.Schema{
		{Name: "g", Type: storage.TInt},
		{Name: "label", Type: storage.TString},
	})
	for i := 0; i < 4; i++ {
		dim.AppendRow(i, "L")
	}
	fact := storage.NewEmpty("fact", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	})
	for i := 0; i < 10; i++ {
		fact.AppendRow(i%4, float64(i))
	}
	return dim, fact
}

func joinQuery(dim, fact *storage.Relation, aggs []AggDef) Node {
	return GroupBy{
		Child: Filter{
			Child: Join{
				Left:     Scan{Table: "dim", Rel: dim},
				Right:    Scan{Table: "fact", Rel: fact},
				LeftKey:  "g",
				RightKey: "k",
			},
			Pred: expr.And{
				L: expr.LtE(expr.C("v"), expr.F(5)),
				R: expr.EqE(expr.C("label"), expr.S("L")),
			},
		},
		Keys: []string{"label"},
		Aggs: aggs,
	}
}

func TestPushdownSplitsConjunctsIntoScans(t *testing.T) {
	dim, fact := dimFact()
	n := pushdownNode(joinQuery(dim, fact, []AggDef{{Fn: ops.Count, Name: "c"}}))
	s := Format(n)
	if strings.Contains(s, "Filter") {
		t.Fatalf("residual filter left behind:\n%s", s)
	}
	if !strings.Contains(s, "Scan dim filter=(label = 'L')") ||
		!strings.Contains(s, "Scan fact filter=(v < 5)") {
		t.Fatalf("conjuncts not pushed into scans:\n%s", s)
	}
}

func TestPushdownThroughGroupByKeys(t *testing.T) {
	_, fact := dimFact()
	n := Filter{
		Child: GroupBy{
			Child: Scan{Table: "fact", Rel: fact},
			Keys:  []string{"k"},
			Aggs:  []AggDef{{Fn: ops.Count, Name: "c"}},
		},
		Pred: expr.And{
			L: expr.LeE(expr.C("k"), expr.I(2)), // key predicate: sinks below the agg
			R: expr.GeE(expr.C("c"), expr.I(1)), // aggregate predicate: must stay
		},
	}
	s := Format(pushdownNode(n))
	if !strings.Contains(s, "Scan fact filter=(k <= 2)") {
		t.Fatalf("key predicate not pushed below group-by:\n%s", s)
	}
	if !strings.Contains(s, "Filter (c >= 1)") {
		t.Fatalf("aggregate predicate must stay above the group-by:\n%s", s)
	}
}

func TestPKFKDetection(t *testing.T) {
	dim, fact := dimFact()
	j := Join{Left: Scan{Table: "dim", Rel: dim}, Right: Scan{Table: "fact", Rel: fact},
		LeftKey: "g", RightKey: "k"}
	// dim.g is unique → detected by the uniqueness scan with no catalog.
	if got := detectPKFK(j, Opts{}).(Join); !got.PKFK {
		t.Fatal("unique left key not detected")
	}
	// fact.k has duplicates → not pk-fk when fact builds.
	rev := Join{Left: Scan{Table: "fact", Rel: fact}, Right: Scan{Table: "dim", Rel: dim},
		LeftKey: "k", RightKey: "g"}
	if got := detectPKFK(rev, Opts{}).(Join); got.PKFK {
		t.Fatal("duplicate left key wrongly detected as pk")
	}
	// A single-key aggregation output is unique by construction.
	sub := GroupBy{Child: Scan{Table: "fact", Rel: fact}, Keys: []string{"k"},
		Aggs: []AggDef{{Fn: ops.Count, Name: "c"}}}
	j2 := Join{Left: sub, Right: Scan{Table: "dim", Rel: dim}, LeftKey: "k", RightKey: "g"}
	if got := detectPKFK(j2, Opts{}).(Join); !got.PKFK {
		t.Fatal("group-by key output not detected as unique")
	}
	// Declared primary keys short-circuit the scan.
	cat := storage.NewCatalog()
	cat.Register(dim)
	cat.SetPrimaryKey("dim", "g")
	if got := detectPKFK(j, Opts{Catalog: cat}).(Join); !got.PKFK {
		t.Fatal("declared pk not detected")
	}
}

func TestFusionRewritesBlock(t *testing.T) {
	dim, fact := dimFact()
	n, traces := Optimize(joinQuery(dim, fact, []AggDef{
		{Fn: ops.Count, Name: "c"},
		{Fn: ops.Sum, Arg: expr.C("v"), Name: "s"},
	}), Opts{})
	spja, ok := n.(SPJA)
	if !ok {
		t.Fatalf("block not fused:\n%s", Format(n))
	}
	if len(spja.Inputs) != 2 || len(spja.Joins) != 1 {
		t.Fatalf("fused shape wrong:\n%s", Format(n))
	}
	if spja.Filters[0] == nil || spja.Filters[1] == nil {
		t.Fatal("pushed-down scan filters not pipelined into the block")
	}
	if spja.Keys[0].Input != 0 || spja.Aggs[1].Input != 1 {
		t.Fatalf("key/agg input resolution wrong: %+v", spja)
	}
	var names []string
	for _, tr := range traces {
		names = append(names, tr.Rule)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "predicate-pushdown") || !strings.Contains(joined, "fuse-spja") {
		t.Fatalf("trace missing rules: %v", names)
	}
}

func TestFusionPreconditions(t *testing.T) {
	dim, fact := dimFact()
	// COUNT(DISTINCT) blocks fusion.
	n, _ := Optimize(joinQuery(dim, fact, []AggDef{{Fn: ops.CountDistinct, Arg: expr.C("v"), Name: "d"}}), Opts{})
	if _, fused := n.(SPJA); fused {
		t.Fatal("CountDistinct block must not fuse")
	}
	// Non-pk-fk joins block fusion (fact.k builds, has duplicates).
	mn := GroupBy{
		Child: Join{Left: Scan{Table: "fact", Rel: fact}, Right: Scan{Table: "dim", Rel: dim},
			LeftKey: "k", RightKey: "g"},
		Keys: []string{"label"},
		Aggs: []AggDef{{Fn: ops.Count, Name: "c"}},
	}
	n, _ = Optimize(mn, Opts{})
	if _, fused := n.(SPJA); fused {
		t.Fatal("M:N join block must not fuse")
	}
	// NoFusion disables the rule entirely.
	n, _ = Optimize(joinQuery(dim, fact, []AggDef{{Fn: ops.Count, Name: "c"}}), Opts{NoFusion: true})
	if _, fused := n.(SPJA); fused {
		t.Fatal("NoFusion must disable the fusion rule")
	}
}

func TestFusionOverSubplanInput(t *testing.T) {
	dim, fact := dimFact()
	inner := GroupBy{
		Child: Scan{Table: "fact", Rel: fact},
		Keys:  []string{"k"},
		Aggs:  []AggDef{{Fn: ops.Count, Name: "cnt"}},
	}
	outer := GroupBy{
		Child: Join{Left: inner, Right: Scan{Table: "dim", Rel: dim}, LeftKey: "k", RightKey: "g"},
		Keys:  []string{"label"},
		Aggs:  []AggDef{{Fn: ops.Sum, Arg: expr.C("cnt"), Name: "total"}},
	}
	n, _ := Optimize(outer, Opts{})
	spja, ok := n.(SPJA)
	if !ok {
		t.Fatalf("outer block over aggregation input not fused:\n%s", Format(n))
	}
	if _, isGB := spja.Inputs[0].(GroupBy); !isGB {
		t.Fatalf("inner aggregation should stay a subplan input:\n%s", Format(n))
	}
}

func TestProjectionPruning(t *testing.T) {
	dim, fact := dimFact()
	// Generic (M:N) join under a group-by: the join should materialize only
	// the columns the aggregation reads plus its keys.
	n := GroupBy{
		Child: Join{Left: Scan{Table: "fact", Rel: fact}, Right: Scan{Table: "dim", Rel: dim},
			LeftKey: "k", RightKey: "g"},
		Keys: []string{"label"},
		Aggs: []AggDef{{Fn: ops.Count, Name: "c"}},
	}
	out, _ := Optimize(n, Opts{})
	gb, ok := out.(GroupBy)
	if !ok {
		t.Fatalf("expected generic group-by:\n%s", Format(out))
	}
	j := gb.Child.(Join)
	if j.Cols == nil {
		t.Fatal("join columns not pruned")
	}
	if !containsStr(j.Cols, "label") {
		t.Fatalf("pruned columns must keep the group key: %v", j.Cols)
	}
	if containsStr(j.Cols, "v") {
		t.Fatalf("unused column kept: %v", j.Cols)
	}
	// Identity projections vanish.
	p := Project{Child: Scan{Table: "dim", Rel: dim}, Cols: []string{"g", "label"}}
	if _, isScan := pruneNode(p, nil).(Scan); !isScan {
		t.Fatal("identity projection not removed")
	}
}

func TestOutSchemaShapes(t *testing.T) {
	dim, fact := dimFact()
	gb := GroupBy{Child: Scan{Table: "fact", Rel: fact}, Keys: []string{"k"},
		Aggs: []AggDef{{Fn: ops.Count}, {Fn: ops.Sum, Arg: expr.C("v"), Name: "s"}}}
	s, err := OutSchema(gb)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[0].Name != "k" || s[1].Name != "count_0" || s[2].Name != "s" {
		t.Fatalf("group-by schema = %v", s)
	}
	if s[1].Type != storage.TInt || s[2].Type != storage.TFloat {
		t.Fatalf("aggregate types wrong: %v", s)
	}
	// Join schema fails on column collisions.
	dup := storage.NewEmpty("dup", storage.Schema{{Name: "k", Type: storage.TInt}})
	if _, err := OutSchema(Join{Left: Scan{Table: "fact", Rel: fact}, Right: Scan{Table: "dup", Rel: dup},
		LeftKey: "k", RightKey: "k"}); err == nil {
		t.Fatal("colliding join schema must error")
	}
	if SingleBase(gb) != fact {
		t.Fatal("SingleBase wrong")
	}
	if SingleBase(Join{Left: Scan{Rel: fact}, Right: Scan{Rel: dim}}) != nil {
		t.Fatal("SingleBase over two bases must be nil")
	}
}
