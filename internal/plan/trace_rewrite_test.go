package plan

import (
	"strings"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/ops"
)

// The generalized scan-equivalence seam: an unbound predicate-seeded
// Backward over a bare filtered scan (no aggregation) rewrites to a single
// filtered scan, conjoining the base filter and the seed predicate.
func TestTraceRewriteBareFilteredScan(t *testing.T) {
	_, fact := dimFact()
	n := rewriteTraces(Backward{
		Source:   Scan{Table: "fact", Rel: fact, Filter: expr.LtE(expr.C("v"), expr.F(5))},
		Table:    "fact",
		Rel:      fact,
		SeedPred: expr.EqE(expr.C("k"), expr.I(3)),
	})
	s := Format(n)
	if strings.Contains(s, "Backward") {
		t.Fatalf("bare filtered scan not rewritten:\n%s", s)
	}
	if !strings.Contains(s, "Scan fact") || !strings.Contains(s, "(v < 5)") || !strings.Contains(s, "(k = 3)") {
		t.Fatalf("rewrite lost a conjunct:\n%s", s)
	}
}

// A grouped source still rewrites only when the seed predicate is over the
// grouping keys; an aggregate-column seed keeps the trace node.
func TestTraceRewriteRequiresKeySeed(t *testing.T) {
	_, fact := dimFact()
	grouped := GroupBy{
		Child: Scan{Table: "fact", Rel: fact},
		Keys:  []string{"k"},
		Aggs:  []AggDef{{Fn: ops.Count, Name: "c"}},
	}
	keySeed := rewriteTraces(Backward{
		Source: grouped, Table: "fact", Rel: fact,
		SeedPred: expr.EqE(expr.C("k"), expr.I(1)),
	})
	if strings.Contains(Format(keySeed), "Backward") {
		t.Fatalf("key-predicate seed over grouped source should rewrite:\n%s", Format(keySeed))
	}
	aggSeed := rewriteTraces(Backward{
		Source: grouped, Table: "fact", Rel: fact,
		SeedPred: expr.GeE(expr.C("c"), expr.I(2)),
	})
	if !strings.Contains(Format(aggSeed), "Backward") {
		t.Fatalf("aggregate-column seed must keep the trace node:\n%s", Format(aggSeed))
	}
}

// ProfileTrace drives Auto's plan-shape choice: join plans report
// MultiInput, single-input chains do not.
func TestProfileTraceMultiInput(t *testing.T) {
	dim, fact := dimFact()
	join := joinQuery(dim, fact, []AggDef{{Fn: ops.Count, Name: "c"}})
	if !ProfileTrace(join).MultiInput {
		t.Fatal("join plan should profile as multi-input")
	}
	single := GroupBy{
		Child: Scan{Table: "fact", Rel: fact, Filter: expr.LtE(expr.C("v"), expr.F(5))},
		Keys:  []string{"k"},
		Aggs:  []AggDef{{Fn: ops.Count, Name: "c"}},
	}
	if ProfileTrace(single).MultiInput {
		t.Fatal("single-table plan should not profile as multi-input")
	}
}
