package plan

import (
	"fmt"
	"hash/fnv"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/lineage"
)

// Fingerprint renders a plan as a canonical one-line string that identifies
// both the plan shape and the data it runs over: two plans with equal
// fingerprints execute identically within one process. It is what the
// server's result cache keys on (crossfilter re-brushing repeats the exact
// same trace plan), so it must distinguish everything execution observes:
//
//   - node structure and every predicate/key/aggregate (expression String
//     forms are canonical);
//   - the identity of each base relation — name, row count, and the
//     *Relation pointer, so re-registering a table under the same name
//     changes every fingerprint that scans it (stale cache entries then
//     simply never match again and age out of the LRU);
//   - trace seeds (long rid lists are FNV-hashed, not inlined) and, for
//     bound traces, the bound capture's pointer identity.
//
// Pointer components make fingerprints process-local: they are stable for
// the lifetime of the process (what a cache needs), not across restarts.
func Fingerprint(n Node) string {
	var b strings.Builder
	fingerprint(&b, n)
	return b.String()
}

func fingerprint(b *strings.Builder, n Node) {
	switch node := n.(type) {
	case Scan:
		fmt.Fprintf(b, "scan(%s,n=%d,rel=%p", node.Table, node.Rel.N, node.Rel)
		if node.Filter != nil {
			fmt.Fprintf(b, ",filter=%s", node.Filter)
		}
		b.WriteByte(')')
	case Filter:
		fmt.Fprintf(b, "filter(%s,", node.Pred)
		fingerprint(b, node.Child)
		b.WriteByte(')')
	case Project:
		fmt.Fprintf(b, "project(%s,", strings.Join(node.Cols, "|"))
		fingerprint(b, node.Child)
		b.WriteByte(')')
	case Join:
		fmt.Fprintf(b, "join(%s=%s,qual=%s,pkfk=%t,cols=%s,",
			node.LeftKey, node.RightKey, node.LeftQual, node.PKFK, strings.Join(node.Cols, "|"))
		fingerprint(b, node.Left)
		b.WriteByte(',')
		fingerprint(b, node.Right)
		b.WriteByte(')')
	case GroupBy:
		fmt.Fprintf(b, "groupby(keys=%s,aggs=%s,", strings.Join(node.Keys, "|"), formatAggs(node.Aggs))
		fingerprint(b, node.Child)
		b.WriteByte(')')
	case Union:
		fmt.Fprintf(b, "union(attrs=%s,", strings.Join(node.Attrs, "|"))
		fingerprint(b, node.Left)
		b.WriteByte(',')
		fingerprint(b, node.Right)
		b.WriteByte(')')
	case OrderBy:
		b.WriteString("orderby(")
		for i, k := range node.Keys {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(k.Col)
			if k.Desc {
				b.WriteString(" desc")
			}
		}
		b.WriteByte(',')
		fingerprint(b, node.Child)
		b.WriteByte(')')
	case Limit:
		fmt.Fprintf(b, "limit(%d,", node.N)
		fingerprint(b, node.Child)
		b.WriteByte(')')
	case SPJA:
		b.WriteString("spja(keys=")
		for i, k := range node.Keys {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(b, "in%d.%s", k.Input, k.Col)
		}
		b.WriteString(",aggs=")
		for i, a := range node.Aggs {
			if i > 0 {
				b.WriteByte('|')
			}
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.String()
			}
			fmt.Fprintf(b, "%s(in%d.%s)", a.Fn, a.Input, arg)
			if a.Filter != nil {
				fmt.Fprintf(b, " if %s", a.Filter)
			}
			fmt.Fprintf(b, " as %s", a.Name)
		}
		b.WriteString(",joins=")
		for i, j := range node.Joins {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(b, "in%d.%s=%s", j.LeftInput, j.LeftCol, j.RightCol)
		}
		for i, in := range node.Inputs {
			b.WriteByte(',')
			if node.Filters[i] != nil {
				fmt.Fprintf(b, "[%s]", node.Filters[i])
			}
			fingerprint(b, in)
		}
		b.WriteByte(')')
	case Backward:
		fmt.Fprintf(b, "backward(%s,rel=%p,%s", node.Table, node.Rel,
			traceFingerprint(node.SeedRids, node.SeedPred, node.Filter, node.Distinct, node.Bound))
		if node.Source != nil {
			b.WriteByte(',')
			fingerprint(b, node.Source)
		}
		b.WriteByte(')')
	case Forward:
		fmt.Fprintf(b, "forward(%s,rel=%p,%s", node.Table, node.Rel,
			traceFingerprint(node.SeedRids, node.SeedPred, node.Filter, node.Distinct, node.Bound))
		if node.Source != nil {
			b.WriteByte(',')
			fingerprint(b, node.Source)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?%T", n)
	}
}

// traceFingerprint canonicalizes the attributes shared by the two trace
// nodes. Seed rid lists are content-hashed: two traces with the same seeds
// fingerprint equal, and a million-rid seed set does not inline a
// million-entry string.
func traceFingerprint(rids []lineage.Rid, seedPred, filter expr.Expr,
	distinct bool, bound *BoundTrace) string {
	var b strings.Builder
	switch {
	case rids != nil:
		h := fnv.New64a()
		var buf [4]byte
		for _, r := range rids {
			buf[0], buf[1], buf[2], buf[3] = byte(r), byte(r>>8), byte(r>>16), byte(r>>24)
			h.Write(buf[:])
		}
		fmt.Fprintf(&b, "seeds=rids:%d:%x", len(rids), h.Sum64())
	case seedPred != nil:
		fmt.Fprintf(&b, "seeds=pred:%s", seedPred)
	default:
		b.WriteString("seeds=all")
	}
	if filter != nil {
		fmt.Fprintf(&b, ",filter=%s", filter)
	}
	if distinct {
		b.WriteString(",distinct")
	}
	if bound != nil {
		fmt.Fprintf(&b, ",bound=%p", bound.Capture)
	}
	return b.String()
}
