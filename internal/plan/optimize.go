package plan

import (
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Opts configures the optimizer.
type Opts struct {
	// Catalog supplies primary-key metadata for pk-fk join detection; the
	// rule falls back to scanning the key column for uniqueness when the
	// catalog is nil or silent.
	Catalog *storage.Catalog
	// NoFusion disables the SPJA fusion rule, forcing every block onto the
	// generic runner. The differential harness and the plan benchmark use it
	// to compare the fused path against the generic path.
	NoFusion bool
}

// Trace records one optimizer rule application that changed the plan.
type Trace struct {
	Rule string
	Plan string // Format(plan) after the rule fired
}

// Rules returns the pass pipeline in application order.
func rules(o Opts) []struct {
	name  string
	apply func(Node, Opts) Node
} {
	rs := []struct {
		name  string
		apply func(Node, Opts) Node
	}{
		{"predicate-pushdown", func(n Node, _ Opts) Node { return pushdownNode(n) }},
		{"trace-rewrite", func(n Node, _ Opts) Node { return rewriteTraces(n) }},
		{"pkfk-detect", detectPKFK},
		{"fuse-spja", func(n Node, _ Opts) Node { return fuseNode(n) }},
		{"prune-projections", func(n Node, _ Opts) Node { return pruneNode(n, nil) }},
	}
	if o.NoFusion {
		out := rs[:0:0]
		for _, r := range rs {
			if r.name != "fuse-spja" {
				out = append(out, r)
			}
		}
		return out
	}
	return rs
}

// Optimize runs the rule pipeline over n and returns the rewritten plan plus
// a trace entry for every rule that changed it. The change detection renders
// the plan after every rule (Format string diffing), which EXPLAIN wants but
// the execution path does not — hot callers use OptimizeNoTrace.
func Optimize(n Node, o Opts) (Node, []Trace) {
	var traces []Trace
	before := Format(n)
	for _, r := range rules(o) {
		n = r.apply(n, o)
		if after := Format(n); after != before {
			traces = append(traces, Trace{Rule: r.name, Plan: after})
			before = after
		}
	}
	return n, traces
}

// OptimizeNoTrace runs the same rule pipeline without recording the
// per-rule EXPLAIN trace, skipping the per-rule plan renders. Interactive
// consuming queries (one small plan per interaction) care about this fixed
// overhead.
func OptimizeNoTrace(n Node, o Opts) Node {
	for _, r := range rules(o) {
		n = r.apply(n, o)
	}
	return n
}

// --- predicate pushdown ------------------------------------------------------

// pushdownNode moves Filter predicates toward the scans: each conjunct sinks
// through projections, joins (into whichever side covers its columns), and
// group-bys (when it references group keys only), and is absorbed into
// Scan.Filter when it reaches a base relation. Conjuncts that cannot sink stay
// where they are.
func pushdownNode(n Node) Node {
	switch node := n.(type) {
	case Filter:
		child := pushdownNode(node.Child)
		var rest []expr.Expr
		for _, conj := range conjuncts(node.Pred) {
			if nc, ok := pushInto(child, conj); ok {
				child = nc
			} else {
				rest = append(rest, conj)
			}
		}
		if len(rest) == 0 {
			return child
		}
		return Filter{Child: child, Pred: expr.AndE(rest...)}
	case Project:
		return Project{Child: pushdownNode(node.Child), Cols: node.Cols}
	case Join:
		node.Left = pushdownNode(node.Left)
		node.Right = pushdownNode(node.Right)
		return node
	case GroupBy:
		node.Child = pushdownNode(node.Child)
		return node
	case Union:
		node.Left = pushdownNode(node.Left)
		node.Right = pushdownNode(node.Right)
		return node
	case OrderBy:
		node.Child = pushdownNode(node.Child)
		return node
	case Limit:
		node.Child = pushdownNode(node.Child)
		return node
	case Backward:
		if node.Source != nil {
			node.Source = pushdownNode(node.Source)
		}
		return node
	case Forward:
		if node.Source != nil {
			node.Source = pushdownNode(node.Source)
		}
		return node
	}
	return n
}

// pushInto tries to sink one conjunct into n, returning the rewritten node.
func pushInto(n Node, conj expr.Expr) (Node, bool) {
	cols := expr.Columns(conj)
	switch node := n.(type) {
	case Scan:
		for _, c := range cols {
			if node.Rel.Schema.Col(c) < 0 {
				return n, false
			}
		}
		if node.Filter == nil {
			node.Filter = conj
		} else {
			node.Filter = expr.And{L: node.Filter, R: conj}
		}
		return node, true
	case Filter:
		if nc, ok := pushInto(node.Child, conj); ok {
			node.Child = nc
			return node, true
		}
		// Stuck at the same height: merge into this filter.
		node.Pred = expr.And{L: node.Pred, R: conj}
		return node, true
	case Project:
		for _, c := range cols {
			if !containsStr(node.Cols, c) {
				return n, false
			}
		}
		if nc, ok := pushInto(node.Child, conj); ok {
			node.Child = nc
			return node, true
		}
		return n, false
	case Join:
		inLeft, inRight := true, true
		for _, c := range cols {
			l, r := resolveCount(node.Left, c), resolveCount(node.Right, c)
			if l != 1 || r != 0 {
				inLeft = false
			}
			if r != 1 || l != 0 {
				inRight = false
			}
		}
		if inLeft {
			if nc, ok := pushInto(node.Left, conj); ok {
				node.Left = nc
				return node, true
			}
			node.Left = Filter{Child: node.Left, Pred: conj}
			return node, true
		}
		if inRight {
			if nc, ok := pushInto(node.Right, conj); ok {
				node.Right = nc
				return node, true
			}
			node.Right = Filter{Child: node.Right, Pred: conj}
			return node, true
		}
		return n, false
	case GroupBy:
		// A predicate over group keys only commutes with the aggregation:
		// filtering the groups out equals filtering their input rows out.
		for _, c := range cols {
			if !containsStr(node.Keys, c) {
				return n, false
			}
		}
		if nc, ok := pushInto(node.Child, conj); ok {
			node.Child = nc
			return node, true
		}
		node.Child = Filter{Child: node.Child, Pred: conj}
		return node, true
	case Backward:
		// The trace's output rows ARE base rows of Rel, so a consuming
		// predicate over base columns commutes with the trace: it sinks into
		// the node's expansion filter and rows failing it never materialize.
		for _, c := range cols {
			if node.Rel.Schema.Col(c) < 0 {
				return n, false
			}
		}
		node.Filter = andWith(node.Filter, conj)
		return node, true
	case Forward:
		// Forward output rows are a subset of the source's output rows:
		// filtering after the trace equals dropping failing rids during
		// expansion.
		srcSchema, err := OutSchema(node)
		if err != nil {
			return n, false
		}
		for _, c := range cols {
			if srcSchema.Col(c) < 0 {
				return n, false
			}
		}
		node.Filter = andWith(node.Filter, conj)
		return node, true
	}
	return n, false
}

// andWith conjoins e onto base (nil base yields e).
func andWith(base, e expr.Expr) expr.Expr {
	if base == nil {
		return e
	}
	return expr.And{L: base, R: e}
}

// conjuncts flattens a conjunction tree.
func conjuncts(e expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []expr.Expr{e}
}

// --- trace rewriting ---------------------------------------------------------

// rewriteTraces rewrites trace-then-query subtrees (Lin et al.-style predicate
// pushdown through lineage): when a Backward trace's seed predicate references
// only the group-by keys of a single-scan aggregation source, the trace is
// provably equivalent to scanning the base relation with (scan filter ∧ seed
// predicate ∧ consuming filter) — each base row feeds exactly one group, so
// tracing the selected groups selects exactly the rows whose key satisfies
// the predicate.
//
// Unbound traces (no captured instance to reuse) rewrite to that Scan
// outright: it skips executing the source aggregation entirely. Bound traces
// keep the index — the capture already exists — but carry the equivalent
// Scan as an annotation so the physical layer can choose scan-and-filter over
// index-trace when the seeds select most of the output (a near-full trace
// touches nearly every base row anyway, and a sequential predicate scan beats
// scattered rid-list expansion).
func rewriteTraces(n Node) Node {
	switch node := n.(type) {
	case Filter:
		node.Child = rewriteTraces(node.Child)
		return node
	case Project:
		node.Child = rewriteTraces(node.Child)
		return node
	case Join:
		node.Left = rewriteTraces(node.Left)
		node.Right = rewriteTraces(node.Right)
		return node
	case GroupBy:
		node.Child = rewriteTraces(node.Child)
		return node
	case Union:
		node.Left = rewriteTraces(node.Left)
		node.Right = rewriteTraces(node.Right)
		return node
	case OrderBy:
		node.Child = rewriteTraces(node.Child)
		return node
	case Limit:
		node.Child = rewriteTraces(node.Child)
		return node
	case Backward:
		if node.Source != nil {
			node.Source = rewriteTraces(node.Source)
		}
		sc, ok := traceScanEquiv(node)
		if !ok {
			return node
		}
		if node.Bound == nil {
			// No capture to reuse: the filtered scan IS the trace.
			return sc
		}
		node.ScanEquiv = &sc
		return node
	case Forward:
		if node.Source != nil {
			node.Source = rewriteTraces(node.Source)
		}
		return node
	}
	return n
}

// traceScanEquiv derives the scan-and-filter equivalent of a Backward trace,
// when one exists. Explicit rid seeds never qualify — they address output
// rows the rewrite cannot name — so the trace must be seeded with nil or a
// predicate, over one of two source shapes:
//
//   - a group-by over a single scan of the traced relation, with the seed
//     predicate referencing group keys only: each base row feeds exactly one
//     group, so tracing the selected groups selects exactly the rows whose
//     key satisfies the predicate;
//   - a bare (possibly filtered) scan of the traced relation: its backward
//     lineage is the selection itself, so a seed predicate over the output
//     columns is a predicate over the surviving base rows verbatim.
func traceScanEquiv(node Backward) (Scan, bool) {
	if node.SeedRids != nil {
		return Scan{}, false
	}
	sc, pred, keys, grouped, ok := scanEquivSource(node.Source)
	if !ok || sc.Table != node.Table || sc.Rel != node.Rel {
		return Scan{}, false
	}
	if node.SeedPred != nil {
		// Seed predicates must translate verbatim onto base columns: for a
		// grouped source that means group keys only; for a scan-shaped
		// source every output column is already a base column.
		for _, c := range expr.Columns(node.SeedPred) {
			if grouped && !containsStr(keys, c) {
				return Scan{}, false
			}
			if node.Rel.Schema.Col(c) < 0 {
				return Scan{}, false
			}
		}
	}
	for _, e := range []expr.Expr{pred, node.SeedPred, node.Filter} {
		if e != nil {
			if sc.Filter == nil {
				sc.Filter = e
			} else {
				sc.Filter = expr.And{L: sc.Filter, R: e}
			}
		}
	}
	return sc, true
}

// scanEquivSource matches the source shapes traceScanEquiv (and the strategy
// chooser via ProfileTrace) understands: an optional group-by over an
// optional filter over a scan. keys/grouped carry the group-by context;
// pred is the intermediate filter, folded into the returned scan's filter by
// the caller.
func scanEquivSource(src Node) (sc Scan, pred expr.Expr, keys []string, grouped bool, ok bool) {
	if gb, isGB := src.(GroupBy); isGB {
		keys, grouped = gb.Keys, true
		src = gb.Child
	}
	if f, isFilter := src.(Filter); isFilter {
		pred = f.Pred
		src = f.Child
	}
	sc, ok = src.(Scan)
	return sc, pred, keys, grouped, ok
}

// TraceProfile summarizes the plan features the capture-strategy chooser
// (core's Strategy = Auto) costs against.
type TraceProfile struct {
	// MultiInput: re-executing the plan for a lazy trace replays a join or
	// union — the expensive shape, where capturing at least the backward
	// direction eagerly (hybrid) amortizes better than recompute.
	MultiInput bool
	// ScanRewritable: a predicate-seeded backward trace over this plan
	// collapses to one filtered scan (no re-execution of the aggregation at
	// all) — the shape where lazy is nearly free.
	ScanRewritable bool
}

// ProfileTrace inspects an optimized plan for the strategy chooser.
func ProfileTrace(n Node) TraceProfile {
	_, _, _, _, rewritable := scanEquivSource(n)
	return TraceProfile{MultiInput: hasMultiInput(n), ScanRewritable: rewritable}
}

// hasMultiInput reports whether the plan combines more than one input
// anywhere: a Join, a Union, or a fused SPJA block with multiple inputs.
func hasMultiInput(n Node) bool {
	switch node := n.(type) {
	case Join, Union:
		return true
	case SPJA:
		if len(node.Inputs) > 1 {
			return true
		}
		for _, in := range node.Inputs {
			if hasMultiInput(in) {
				return true
			}
		}
	case Filter:
		return hasMultiInput(node.Child)
	case Project:
		return hasMultiInput(node.Child)
	case GroupBy:
		return hasMultiInput(node.Child)
	case OrderBy:
		return hasMultiInput(node.Child)
	case Limit:
		return hasMultiInput(node.Child)
	case Backward:
		return node.Source != nil && hasMultiInput(node.Source)
	case Forward:
		return node.Source != nil && hasMultiInput(node.Source)
	}
	return false
}

// --- pk-fk join detection ----------------------------------------------------

// detectPKFK marks joins whose left (build) key is provably unique: declared
// as a primary key in the catalog, the single group-by key of an aggregation
// output, or verified unique by scanning an integer base column. The physical
// layer then runs the pk-fk specialization, and the fusion rule treats the
// join as part of an SPJA chain.
func detectPKFK(n Node, o Opts) Node {
	switch node := n.(type) {
	case Join:
		node.Left = detectPKFK(node.Left, o)
		node.Right = detectPKFK(node.Right, o)
		if !node.PKFK && keyUnique(node.Left, node.LeftKey, o.Catalog) {
			node.PKFK = true
		}
		return node
	case Filter:
		node.Child = detectPKFK(node.Child, o)
		return node
	case Project:
		node.Child = detectPKFK(node.Child, o)
		return node
	case GroupBy:
		node.Child = detectPKFK(node.Child, o)
		return node
	case Union:
		node.Left = detectPKFK(node.Left, o)
		node.Right = detectPKFK(node.Right, o)
		return node
	case OrderBy:
		node.Child = detectPKFK(node.Child, o)
		return node
	case Limit:
		node.Child = detectPKFK(node.Child, o)
		return node
	case Backward:
		if node.Source != nil {
			node.Source = detectPKFK(node.Source, o)
		}
		return node
	case Forward:
		if node.Source != nil {
			node.Source = detectPKFK(node.Source, o)
		}
		return node
	}
	return n
}

// keyUnique reports whether col is unique in n's output.
func keyUnique(n Node, col string, cat *storage.Catalog) bool {
	switch node := n.(type) {
	case Scan:
		if cat != nil {
			if cat.PrimaryKey(node.Table) == col {
				return true
			}
			// Memoized per (relation, column): the verification scan runs
			// once, not on every optimize call.
			return cat.UniqueIntColumn(node.Rel, col)
		}
		return storage.IntColumnUnique(node.Rel, col)
	case Filter:
		// A filter only removes rows; uniqueness is preserved.
		return keyUnique(node.Child, col, cat)
	case Project:
		if !containsStr(node.Cols, col) {
			return false
		}
		return keyUnique(node.Child, col, cat)
	case GroupBy:
		// The single group-by key is the output's identity.
		return len(node.Keys) == 1 && node.Keys[0] == col
	case SPJA:
		return len(node.Keys) == 1 && node.Keys[0].Col == col
	case OrderBy:
		return keyUnique(node.Child, col, cat)
	case Limit:
		return keyUnique(node.Child, col, cat)
	}
	return false
}

// --- SPJA fusion -------------------------------------------------------------

// fuseNode rewrites fusible GroupBy-over-pk-fk-join-chain subtrees into SPJA
// nodes (bottom-up, so inner blocks fuse before outer ones). Preconditions:
// at least two inputs, every chain join pk-fk with integer keys, no
// COUNT(DISTINCT) (the fused aggregation does not implement it), and every
// group key and aggregate argument resolving to exactly one input.
func fuseNode(n Node) Node {
	switch node := n.(type) {
	case Filter:
		node.Child = fuseNode(node.Child)
		return node
	case Project:
		node.Child = fuseNode(node.Child)
		return node
	case Join:
		node.Left = fuseNode(node.Left)
		node.Right = fuseNode(node.Right)
		return node
	case Union:
		node.Left = fuseNode(node.Left)
		node.Right = fuseNode(node.Right)
		return node
	case OrderBy:
		node.Child = fuseNode(node.Child)
		return node
	case Limit:
		node.Child = fuseNode(node.Child)
		return node
	case GroupBy:
		node.Child = fuseNode(node.Child)
		if fused, ok := tryFuse(node); ok {
			return fused
		}
		return node
	case Backward:
		if node.Source != nil {
			node.Source = fuseNode(node.Source)
		}
		return node
	case Forward:
		if node.Source != nil {
			node.Source = fuseNode(node.Source)
		}
		return node
	}
	return n
}

func tryFuse(g GroupBy) (Node, bool) {
	inputs, filters, joins, ok := collectChain(g.Child)
	if !ok || len(inputs) < 2 {
		return nil, false
	}
	// Two inputs sharing a base relation would make per-output lineage
	// contribution order diverge between the fused (per-input) and generic
	// (per-join-row) lowerings; keep such blocks on the generic runner.
	seenBase := map[*storage.Relation]bool{}
	for _, in := range inputs {
		for _, b := range Bases(in, nil) {
			if seenBase[b] {
				return nil, false
			}
			seenBase[b] = true
		}
	}
	schemas := make([]storage.Schema, len(inputs))
	for i, in := range inputs {
		s, err := OutSchema(in)
		if err != nil {
			return nil, false
		}
		schemas[i] = s
	}
	// Join keys must be integer columns of their inputs.
	for j, je := range joins {
		lc := schemas[je.LeftInput].Col(je.LeftCol)
		rc := schemas[j+1].Col(je.RightCol)
		if lc < 0 || schemas[je.LeftInput][lc].Type != storage.TInt {
			return nil, false
		}
		if rc < 0 || schemas[j+1][rc].Type != storage.TInt {
			return nil, false
		}
	}
	resolve := func(col string) (int, bool) {
		found := -1
		for i, s := range schemas {
			if s.Col(col) >= 0 {
				if found >= 0 {
					return 0, false
				}
				found = i
			}
		}
		if found < 0 {
			return 0, false
		}
		return found, true
	}
	spja := SPJA{Inputs: inputs, Filters: filters, Joins: joins}
	for _, k := range g.Keys {
		t, ok := resolve(k)
		if !ok {
			return nil, false
		}
		spja.Keys = append(spja.Keys, SPJAKey{Input: t, Col: k})
	}
	for i, a := range g.Aggs {
		if a.Fn == ops.CountDistinct {
			return nil, false
		}
		t := len(inputs) - 1 // COUNT(*) folds with the probe-side (fact) input
		cols := append(expr.Columns(a.Arg), expr.Columns(a.Filter)...)
		for _, c := range cols {
			ct, ok := resolve(c)
			if !ok {
				return nil, false
			}
			t = ct
		}
		// All referenced columns must live in one input.
		for _, c := range cols {
			if schemas[t].Col(c) < 0 {
				return nil, false
			}
		}
		spja.Aggs = append(spja.Aggs, SPJAAgg{Fn: a.Fn, Input: t, Arg: a.Arg, Filter: a.Filter, Name: a.OutName(i)})
	}
	return spja, true
}

// collectChain flattens a left-deep pk-fk join chain into SPJA inputs: joins
// recurse on the left, each right side (and the chain's leftmost leaf)
// becomes one input with its wrapping filters peeled into the block's
// pipelined filter list. Non-pk-fk joins and all other nodes terminate the
// chain and become opaque single inputs.
func collectChain(n Node) (inputs []Node, filters []expr.Expr, joins []SPJAJoin, ok bool) {
	if j, isJoin := n.(Join); isJoin && j.PKFK {
		ins, fs, js, ok := collectChain(j.Left)
		if !ok {
			return nil, nil, nil, false
		}
		// Resolve the prefix-side key to the one input providing it; an
		// explicit qualifier names the owning base scan directly.
		li := -1
		if j.LeftQual != "" {
			for i, in := range ins {
				if sc, ok := in.(Scan); ok && sc.Table == j.LeftQual && sc.Rel.Schema.Col(j.LeftKey) >= 0 {
					li = i
					break
				}
			}
		}
		if li < 0 {
			for i, in := range ins {
				switch resolveCount(in, j.LeftKey) {
				case 1:
					if li >= 0 {
						return nil, nil, nil, false
					}
					li = i
				case 2:
					return nil, nil, nil, false
				}
			}
		}
		if li < 0 {
			return nil, nil, nil, false
		}
		rNode, rFilter := peelFilters(j.Right)
		return append(ins, rNode), append(fs, rFilter),
			append(js, SPJAJoin{LeftInput: li, LeftCol: j.LeftKey, RightCol: j.RightKey}), true
	}
	node, f := peelFilters(n)
	return []Node{node}, []expr.Expr{f}, nil, true
}

// peelFilters strips Filter wrappers (and a Scan's own pushed-down filter)
// off an input, returning the bare input and the conjunction of the peeled
// predicates — the block's pipelined filter for that input.
func peelFilters(n Node) (Node, expr.Expr) {
	var pred expr.Expr
	for {
		switch node := n.(type) {
		case Filter:
			if pred == nil {
				pred = node.Pred
			} else {
				pred = expr.And{L: node.Pred, R: pred}
			}
			n = node.Child
			continue
		case Scan:
			if node.Filter != nil {
				if pred == nil {
					pred = node.Filter
				} else {
					pred = expr.And{L: node.Filter, R: pred}
				}
				node.Filter = nil
				n = node
			}
		}
		return n, pred
	}
}

// --- projection pruning ------------------------------------------------------

// pruneNode removes identity projections and annotates generic joins with the
// column set their ancestors actually read (need == nil means "all columns").
// The physical join then materializes only those columns. SPJA blocks prune
// inherently (they never materialize a join), so their inputs restart the
// analysis from the block's own column uses.
func pruneNode(n Node, need []string) Node {
	switch node := n.(type) {
	case Scan:
		return node
	case Filter:
		node.Child = pruneNode(node.Child, unionCols(need, expr.Columns(node.Pred)))
		return node
	case Project:
		child := pruneNode(node.Child, append([]string(nil), node.Cols...))
		if cs, err := OutSchema(child); err == nil && len(cs) == len(node.Cols) {
			identity := true
			for i, c := range node.Cols {
				if cs[i].Name != c {
					identity = false
					break
				}
			}
			if identity {
				return child
			}
		}
		node.Child = child
		return node
	case Join:
		if need != nil {
			if cols, ok := prunableJoinCols(node, need); ok {
				node.Cols = cols
			}
		}
		leftNeed, rightNeed := splitJoinNeed(node, need)
		node.Left = pruneNode(node.Left, leftNeed)
		node.Right = pruneNode(node.Right, rightNeed)
		return node
	case GroupBy:
		childNeed := append([]string(nil), node.Keys...)
		for _, a := range node.Aggs {
			childNeed = unionCols(childNeed, expr.Columns(a.Arg))
			childNeed = unionCols(childNeed, expr.Columns(a.Filter))
		}
		node.Child = pruneNode(node.Child, childNeed)
		return node
	case Union:
		node.Left = pruneNode(node.Left, append([]string(nil), node.Attrs...))
		node.Right = pruneNode(node.Right, append([]string(nil), node.Attrs...))
		return node
	case OrderBy:
		cn := need
		if cn != nil {
			for _, k := range node.Keys {
				cn = unionCols(cn, []string{k.Col})
			}
		}
		node.Child = pruneNode(node.Child, cn)
		return node
	case Limit:
		node.Child = pruneNode(node.Child, need)
		return node
	case SPJA:
		for i := range node.Inputs {
			inNeed := spjaInputNeed(node, i)
			node.Inputs[i] = pruneNode(node.Inputs[i], inNeed)
		}
		return node
	case Backward:
		// The trace reads the source's lineage, not its columns: restart the
		// analysis below it (the source's own uses decide what it keeps).
		if node.Source != nil {
			node.Source = pruneNode(node.Source, nil)
		}
		return node
	case Forward:
		if node.Source != nil {
			node.Source = pruneNode(node.Source, nil)
		}
		return node
	}
	return n
}

// prunableJoinCols validates that every needed column resolves in exactly one
// side of the join; if so, the join can materialize just those columns.
func prunableJoinCols(j Join, need []string) ([]string, bool) {
	for _, c := range need {
		l, r := resolveCount(j.Left, c), resolveCount(j.Right, c)
		if l+r != 1 {
			return nil, false
		}
	}
	return need, true
}

// splitJoinNeed distributes the join's needed columns to its children, always
// including each side's join key.
func splitJoinNeed(j Join, need []string) (left, right []string) {
	if need == nil {
		return nil, nil
	}
	left = []string{j.LeftKey}
	right = []string{j.RightKey}
	for _, c := range need {
		if resolveCount(j.Left, c) == 1 && resolveCount(j.Right, c) == 0 {
			left = unionCols(left, []string{c})
		} else if resolveCount(j.Right, c) == 1 && resolveCount(j.Left, c) == 0 {
			right = unionCols(right, []string{c})
		} else {
			// Unresolvable or ambiguous: stop pruning below this join.
			return nil, nil
		}
	}
	return left, right
}

// spjaInputNeed collects the columns an SPJA block reads from input i.
func spjaInputNeed(s SPJA, i int) []string {
	var need []string
	for _, k := range s.Keys {
		if k.Input == i {
			need = unionCols(need, []string{k.Col})
		}
	}
	for _, a := range s.Aggs {
		if a.Input == i {
			need = unionCols(need, expr.Columns(a.Arg))
			need = unionCols(need, expr.Columns(a.Filter))
		}
	}
	for j, je := range s.Joins {
		if je.LeftInput == i {
			need = unionCols(need, []string{je.LeftCol})
		}
		if j+1 == i {
			need = unionCols(need, []string{je.RightCol})
		}
	}
	if s.Filters[i] != nil {
		need = unionCols(need, expr.Columns(s.Filters[i]))
	}
	return need
}

func unionCols(dst []string, add []string) []string {
	for _, c := range add {
		if !containsStr(dst, c) {
			dst = append(dst, c)
		}
	}
	return dst
}
