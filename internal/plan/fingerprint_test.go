package plan

import (
	"strings"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func fpRel(name string, n int) *storage.Relation {
	return storage.NewRelation(name, storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}, n)
}

func TestFingerprintDeterministic(t *testing.T) {
	rel := fpRel("t", 10)
	mk := func() Node {
		return GroupBy{
			Child: Scan{Table: "t", Rel: rel, Filter: expr.LtE(expr.C("k"), expr.I(5))},
			Keys:  []string{"k"},
			Aggs:  []AggDef{{Fn: ops.Sum, Arg: expr.C("v"), Name: "s"}},
		}
	}
	a, b := Fingerprint(mk()), Fingerprint(mk())
	if a != b {
		t.Fatalf("identical plans fingerprint differently:\n%s\n%s", a, b)
	}
	if a == "" || !strings.Contains(a, "scan(t") {
		t.Fatalf("fingerprint looks wrong: %q", a)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	rel := fpRel("t", 10)
	base := GroupBy{
		Child: Scan{Table: "t", Rel: rel},
		Keys:  []string{"k"},
		Aggs:  []AggDef{{Fn: ops.Count, Name: "n"}},
	}
	variants := []Node{
		// Different filter.
		GroupBy{Child: Scan{Table: "t", Rel: rel, Filter: expr.LtE(expr.C("k"), expr.I(5))},
			Keys: []string{"k"}, Aggs: []AggDef{{Fn: ops.Count, Name: "n"}}},
		// Different aggregate.
		GroupBy{Child: Scan{Table: "t", Rel: rel},
			Keys: []string{"k"}, Aggs: []AggDef{{Fn: ops.Sum, Arg: expr.C("v"), Name: "n"}}},
		// Same name, different relation instance (re-registered table).
		GroupBy{Child: Scan{Table: "t", Rel: fpRel("t", 10)},
			Keys: []string{"k"}, Aggs: []AggDef{{Fn: ops.Count, Name: "n"}}},
	}
	seen := Fingerprint(base)
	for i, v := range variants {
		if got := Fingerprint(v); got == seen {
			t.Errorf("variant %d fingerprints identically to base: %s", i, got)
		}
	}
}

func TestFingerprintTraceSeeds(t *testing.T) {
	rel := fpRel("t", 100)
	src := GroupBy{Child: Scan{Table: "t", Rel: rel}, Keys: []string{"k"},
		Aggs: []AggDef{{Fn: ops.Count, Name: "n"}}}
	mk := func(rids []lineage.Rid) Node {
		return Backward{Source: src, Table: "t", Rel: rel, SeedRids: rids}
	}
	a := Fingerprint(mk([]lineage.Rid{1, 2, 3}))
	b := Fingerprint(mk([]lineage.Rid{1, 2, 3}))
	c := Fingerprint(mk([]lineage.Rid{1, 2, 4}))
	if a != b {
		t.Fatal("equal seed sets must fingerprint equal")
	}
	if a == c {
		t.Fatal("different seed sets must fingerprint differently")
	}
	// Bound traces of different captures must differ.
	b1 := &BoundTrace{Capture: lineage.NewCapture()}
	b2 := &BoundTrace{Capture: lineage.NewCapture()}
	fa := Fingerprint(Backward{Table: "t", Rel: rel, SeedRids: []lineage.Rid{0}, Bound: b1})
	fb := Fingerprint(Backward{Table: "t", Rel: rel, SeedRids: []lineage.Rid{0}, Bound: b2})
	if fa == fb {
		t.Fatal("traces bound to different captures must fingerprint differently")
	}
}
