// Package plan is the engine's logical plan layer: a relational IR that both
// front ends (the core.Query builder and the SQL compiler) lower onto, an
// optimizer pass pipeline over it (optimize.go), and enough schema inference
// to drive the rules. The physical lowering lives in internal/exec
// (exec.RunPlan): fusible select-project-join-aggregate subtrees are rewritten
// by the optimizer into SPJA nodes that run on the fused block executor
// (exec.Run), and everything else — multi-block residue like HAVING filters,
// ORDER BY/LIMIT, set unions, non-pk-fk joins — runs on the generic
// operator-at-a-time runner with lineage composition.
//
// The IR is deliberately small and name-based: columns are referenced by
// output-relation column name, and every node can report its output schema
// (OutSchema), which is what the rules use to decide where predicates,
// projections, and fusion boundaries may move.
package plan

import (
	"fmt"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Node is a logical plan node.
type Node interface {
	isNode()
}

// Scan reads a base relation, with an optional pipelined filter (installed by
// the predicate-pushdown rule, or directly by the query builder).
type Scan struct {
	Table  string // catalog name (capture indexes are keyed by it)
	Rel    *storage.Relation
	Filter expr.Expr // nil = no filter
}

// Filter applies a predicate to its child's output.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Project keeps the named columns, in order (bag semantics: lineage is
// identity).
type Project struct {
	Child Node
	Cols  []string
}

// Join equi-joins its children on LeftKey = RightKey (integer keys). The
// build side is the left child; the probe side is the right child.
type Join struct {
	Left, Right       Node
	LeftKey, RightKey string
	// LeftQual optionally qualifies LeftKey with its source (table or alias)
	// name. When LeftKey is ambiguous among the prefix sources, the
	// materialized prefix renames the colliding columns to "source.col" and
	// the physical layer uses the qualifier to pick the right one; fusion
	// uses it to resolve the owning input.
	LeftQual string
	// PKFK marks the left key as unique (a primary key or a group-by key),
	// set by the pk-fk detection rule: the physical layer then runs the
	// single-rid-per-entry pk-fk join instead of the general M:N join, and
	// the fusion rule may absorb the join into an SPJA block.
	PKFK bool
	// Cols, when non-nil, lists the output columns the ancestors actually
	// read (projection pruning): the physical join materializes only these.
	Cols []string
}

// AggDef is one aggregate of a GroupBy node. Filter models the SQL
// CASE WHEN ... THEN 1 counting idiom and is supported on fusible blocks
// only (the generic hash aggregation has no per-aggregate filters).
type AggDef struct {
	Fn     ops.AggFn
	Arg    expr.Expr // nil for COUNT(*)
	Filter expr.Expr
	Name   string // output column; "" defaults to fn_<i>
}

// OutName is the aggregate's output column name (the default mirrors both
// physical aggregation operators).
func (a AggDef) OutName(i int) string {
	if a.Name != "" {
		return a.Name
	}
	return fmt.Sprintf("%s_%d", a.Fn, i)
}

// GroupBy hash-aggregates its child: output columns are Keys (in order)
// followed by the aggregates.
type GroupBy struct {
	Child Node
	Keys  []string
	Aggs  []AggDef
}

// Union computes the set union of its children over the given attributes.
type Union struct {
	Left, Right Node
	Attrs       []string
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Col  string
	Desc bool
}

// OrderBy stably sorts its child's output by the keys.
type OrderBy struct {
	Child Node
	Keys  []SortKey
}

// Limit keeps the first N rows of its child.
type Limit struct {
	Child Node
	N     int
}

// BoundTrace binds a trace node to an already-executed instance of its
// Source: the source's output relation and its captured lineage indexes. A
// bound trace never re-runs the source — the physical layer traces the
// capture in place. This is the interactive consuming-query shape of the
// paper (§2.1): a base query runs once with capture, then every interaction
// is a trace-then-query plan over the bound capture.
type BoundTrace struct {
	Out     *storage.Relation
	Capture *lineage.Capture
}

// Backward is a backward lineage-consuming trace (Lb, §2.2) as a plan node:
// its output is the Table rows that contributed to the selected output rows
// of Source (duplicates preserved — transformational semantics — unless
// Distinct). Seeds are an explicit output-rid set or a predicate over the
// source's output; nil seeds trace every output row.
//
// When Bound is nil, the physical layer executes Source (capturing the one
// backward index the trace needs) and traces it; when Bound is set, the
// already-captured indexes are traced directly. The node's own lineage to
// Table is the traced rid list itself, so trace-then-query plans compose
// end-to-end and consuming results can act as base queries for further
// traces (Q1b → Q1c chains).
type Backward struct {
	Source Node              // the traced query (may be nil when Bound is set)
	Table  string            // base relation to trace into
	Rel    *storage.Relation // base relation (the node's output schema)
	// SeedRids selects the seed output rows explicitly; SeedPred selects them
	// by predicate over the source's output. Both nil traces all outputs.
	SeedRids []lineage.Rid
	SeedPred expr.Expr
	// Filter is a consuming predicate over the traced base rows, installed by
	// the optimizer's trace-pushdown rule (or directly by a front end): rows
	// failing it are dropped during rid-list expansion, before any
	// materialization.
	Filter expr.Expr
	// Distinct switches to set semantics (which-provenance).
	Distinct bool
	// ScanEquiv, set by the optimizer when the trace is provably equivalent
	// to a filtered base scan (key-predicate seeds over a single-scan
	// aggregation), lets the physical layer choose scan-and-filter over
	// index-trace by seed selectivity.
	ScanEquiv *Scan
	Bound     *BoundTrace
}

// Forward is the forward trace (Lf): its output is the Source output rows
// that depend on the selected Table rows. Seeds are an explicit base-rid set
// or a predicate over the base relation; Filter (optional) drops traced
// output rows during expansion.
type Forward struct {
	Source   Node
	Table    string
	Rel      *storage.Relation // base relation the seeds address
	SeedRids []lineage.Rid
	SeedPred expr.Expr
	Filter   expr.Expr
	Distinct bool
	Bound    *BoundTrace
}

// SPJA is a fused select-project-join-aggregate block produced by the fusion
// rule: the inputs (base scans or arbitrary subplans) join left-deep along
// Joins, pipeline per-input Filters, and aggregate by Keys/Aggs, all in one
// pass of the fused block executor with no intermediate lineage. Scan inputs
// keep their pipelined filter in Filters; subplan inputs execute first and
// their end-to-end lineage composes with the block's capture.
type SPJA struct {
	Inputs  []Node
	Filters []expr.Expr // per-input pipelined filter (nil entries allowed)
	Joins   []SPJAJoin
	Keys    []SPJAKey
	Aggs    []SPJAAgg
}

// SPJAJoin joins the prefix (inputs 0..j) with input j+1: the prefix-side key
// LeftInput.LeftCol equals input j+1's RightCol.
type SPJAJoin struct {
	LeftInput int
	LeftCol   string
	RightCol  string
}

// SPJAKey is a group-by key qualified by input index.
type SPJAKey struct {
	Input int
	Col   string
}

// SPJAAgg is one aggregate, evaluated against a single input's rows.
type SPJAAgg struct {
	Fn     ops.AggFn
	Input  int
	Arg    expr.Expr
	Filter expr.Expr
	Name   string
}

func (Scan) isNode()     {}
func (Filter) isNode()   {}
func (Project) isNode()  {}
func (Join) isNode()     {}
func (GroupBy) isNode()  {}
func (Union) isNode()    {}
func (OrderBy) isNode()  {}
func (Limit) isNode()    {}
func (SPJA) isNode()     {}
func (Backward) isNode() {}
func (Forward) isNode()  {}

// OutSchema infers the output schema of a node. Join inference fails on
// column-name collisions between the sides (the physical join would prefix
// them with relation names the optimizer cannot predict); rules that need the
// schema treat that as "do not rewrite here".
func OutSchema(n Node) (storage.Schema, error) {
	switch node := n.(type) {
	case Scan:
		return node.Rel.Schema, nil
	case Filter:
		return OutSchema(node.Child)
	case Project:
		cs, err := OutSchema(node.Child)
		if err != nil {
			return nil, err
		}
		out := make(storage.Schema, len(node.Cols))
		for i, c := range node.Cols {
			ci := cs.Col(c)
			if ci < 0 {
				return nil, fmt.Errorf("plan: project column %q not in child schema", c)
			}
			out[i] = cs[ci]
		}
		return out, nil
	case Join:
		ls, err := OutSchema(node.Left)
		if err != nil {
			return nil, err
		}
		rs, err := OutSchema(node.Right)
		if err != nil {
			return nil, err
		}
		out := make(storage.Schema, 0, len(ls)+len(rs))
		for _, f := range ls {
			if rs.Col(f.Name) >= 0 {
				return nil, fmt.Errorf("plan: join output column %q is ambiguous", f.Name)
			}
			out = append(out, f)
		}
		out = append(out, rs...)
		if node.Cols != nil {
			kept := out[:0:0]
			for _, f := range out {
				if containsStr(node.Cols, f.Name) {
					kept = append(kept, f)
				}
			}
			out = kept
		}
		return out, nil
	case GroupBy:
		cs, err := OutSchema(node.Child)
		if err != nil {
			return nil, err
		}
		out := make(storage.Schema, 0, len(node.Keys)+len(node.Aggs))
		for _, k := range node.Keys {
			ci := cs.Col(k)
			if ci < 0 {
				return nil, fmt.Errorf("plan: group key %q not in child schema", k)
			}
			out = append(out, cs[ci])
		}
		for i, a := range node.Aggs {
			ty := storage.TFloat
			if a.Fn == ops.Count || a.Fn == ops.CountDistinct {
				ty = storage.TInt
			}
			out = append(out, storage.Field{Name: a.OutName(i), Type: ty})
		}
		return out, nil
	case Union:
		ls, err := OutSchema(node.Left)
		if err != nil {
			return nil, err
		}
		out := make(storage.Schema, len(node.Attrs))
		for i, a := range node.Attrs {
			ci := ls.Col(a)
			if ci < 0 {
				return nil, fmt.Errorf("plan: union attribute %q not in left schema", a)
			}
			out[i] = ls[ci]
		}
		return out, nil
	case OrderBy:
		return OutSchema(node.Child)
	case Limit:
		return OutSchema(node.Child)
	case Backward:
		return node.Rel.Schema, nil
	case Forward:
		if node.Source != nil {
			return OutSchema(node.Source)
		}
		if node.Bound != nil {
			return node.Bound.Out.Schema, nil
		}
		return nil, fmt.Errorf("plan: forward trace has neither source nor bound result")
	case SPJA:
		out := make(storage.Schema, 0, len(node.Keys)+len(node.Aggs))
		for _, k := range node.Keys {
			is, err := OutSchema(node.Inputs[k.Input])
			if err != nil {
				return nil, err
			}
			ci := is.Col(k.Col)
			if ci < 0 {
				return nil, fmt.Errorf("plan: SPJA key %q not in input %d", k.Col, k.Input)
			}
			out = append(out, is[ci])
		}
		for i, a := range node.Aggs {
			ty := storage.TFloat
			if a.Fn == ops.Count {
				ty = storage.TInt
			}
			name := a.Name
			if name == "" {
				name = fmt.Sprintf("%s_%d", a.Fn, i)
			}
			out = append(out, storage.Field{Name: name, Type: ty})
		}
		return out, nil
	}
	return nil, fmt.Errorf("plan: unknown node %T", n)
}

// resolveCount reports how many times col resolves in n's output schema
// (0 = absent, 1 = unique, 2 = ambiguous). Nodes whose schema cannot be
// inferred count as ambiguous, which makes every rule treat them as opaque.
func resolveCount(n Node, col string) int {
	s, err := OutSchema(n)
	if err != nil {
		return 2
	}
	if s.Col(col) >= 0 {
		return 1
	}
	return 0
}

// Bases appends the base relations scanned anywhere under n, in plan order.
func Bases(n Node, dst []*storage.Relation) []*storage.Relation {
	switch node := n.(type) {
	case Scan:
		return append(dst, node.Rel)
	case Filter:
		return Bases(node.Child, dst)
	case Project:
		return Bases(node.Child, dst)
	case Join:
		return Bases(node.Right, Bases(node.Left, dst))
	case GroupBy:
		return Bases(node.Child, dst)
	case Union:
		return Bases(node.Right, Bases(node.Left, dst))
	case OrderBy:
		return Bases(node.Child, dst)
	case Limit:
		return Bases(node.Child, dst)
	case SPJA:
		for _, in := range node.Inputs {
			dst = Bases(in, dst)
		}
		return dst
	case Backward:
		// The trace's output rows ARE rows of the traced base relation:
		// consuming queries over it are single-base in Rel, regardless of what
		// else the source scanned.
		return append(dst, node.Rel)
	case Forward:
		if node.Source != nil {
			return Bases(node.Source, dst)
		}
		return dst
	}
	return dst
}

// SingleBase returns the plan's base relation if the plan scans exactly one,
// or nil. Consuming queries (core.Result.ConsumeGroupBy) are defined over
// single-base results.
func SingleBase(n Node) *storage.Relation {
	bases := Bases(n, nil)
	if len(bases) == 1 {
		return bases[0]
	}
	return nil
}

// Format renders the plan as an indented tree (EXPLAIN output; also what the
// optimizer trace diffs to decide whether a rule fired).
func Format(n Node) string {
	var b strings.Builder
	format(&b, n, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func format(b *strings.Builder, n Node, depth int) {
	indent(b, depth)
	switch node := n.(type) {
	case Scan:
		fmt.Fprintf(b, "Scan %s", node.Table)
		if node.Filter != nil {
			fmt.Fprintf(b, " filter=%s", node.Filter)
		}
		b.WriteByte('\n')
	case Filter:
		fmt.Fprintf(b, "Filter %s\n", node.Pred)
		format(b, node.Child, depth+1)
	case Project:
		fmt.Fprintf(b, "Project [%s]\n", strings.Join(node.Cols, ", "))
		format(b, node.Child, depth+1)
	case Join:
		fmt.Fprintf(b, "Join %s = %s", node.LeftKey, node.RightKey)
		if node.PKFK {
			b.WriteString(" pkfk")
		}
		if node.Cols != nil {
			fmt.Fprintf(b, " cols=[%s]", strings.Join(node.Cols, ", "))
		}
		b.WriteByte('\n')
		format(b, node.Left, depth+1)
		format(b, node.Right, depth+1)
	case GroupBy:
		fmt.Fprintf(b, "GroupBy keys=[%s] aggs=[%s]\n",
			strings.Join(node.Keys, ", "), formatAggs(node.Aggs))
		format(b, node.Child, depth+1)
	case Union:
		fmt.Fprintf(b, "Union attrs=[%s]\n", strings.Join(node.Attrs, ", "))
		format(b, node.Left, depth+1)
		format(b, node.Right, depth+1)
	case OrderBy:
		parts := make([]string, len(node.Keys))
		for i, k := range node.Keys {
			parts[i] = k.Col
			if k.Desc {
				parts[i] += " desc"
			}
		}
		fmt.Fprintf(b, "OrderBy %s\n", strings.Join(parts, ", "))
		format(b, node.Child, depth+1)
	case Limit:
		fmt.Fprintf(b, "Limit %d\n", node.N)
		format(b, node.Child, depth+1)
	case SPJA:
		keys := make([]string, len(node.Keys))
		for i, k := range node.Keys {
			keys[i] = fmt.Sprintf("in%d.%s", k.Input, k.Col)
		}
		aggs := make([]string, len(node.Aggs))
		for i, a := range node.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.String()
			}
			s := fmt.Sprintf("%s(in%d.%s)", a.Fn, a.Input, arg)
			if a.Filter != nil {
				s += fmt.Sprintf(" filter=%s", a.Filter)
			}
			name := a.Name
			if name == "" {
				name = fmt.Sprintf("%s_%d", a.Fn, i)
			}
			aggs[i] = s + " AS " + name
		}
		fmt.Fprintf(b, "SPJA keys=[%s] aggs=[%s]\n", strings.Join(keys, ", "), strings.Join(aggs, ", "))
		for i, in := range node.Inputs {
			indent(b, depth+1)
			b.WriteString(fmt.Sprintf("input %d", i))
			if i > 0 {
				j := node.Joins[i-1]
				fmt.Fprintf(b, " [in%d.%s = %s]", j.LeftInput, j.LeftCol, j.RightCol)
			}
			if node.Filters[i] != nil {
				fmt.Fprintf(b, " filter=%s", node.Filters[i])
			}
			b.WriteString(":\n")
			format(b, in, depth+2)
		}
	case Backward:
		fmt.Fprintf(b, "Backward trace of %s%s", node.Table, traceAttrs(node.SeedRids, node.SeedPred, node.Filter, node.Distinct))
		if node.ScanEquiv != nil {
			b.WriteString(" scan-equiv")
		}
		if node.Bound != nil {
			b.WriteString(" bound")
		}
		b.WriteByte('\n')
		if node.Source != nil {
			format(b, node.Source, depth+1)
		}
	case Forward:
		fmt.Fprintf(b, "Forward trace of %s%s", node.Table, traceAttrs(node.SeedRids, node.SeedPred, node.Filter, node.Distinct))
		if node.Bound != nil {
			b.WriteString(" bound")
		}
		b.WriteByte('\n')
		if node.Source != nil {
			format(b, node.Source, depth+1)
		}
	default:
		fmt.Fprintf(b, "?%T\n", n)
	}
}

// traceAttrs renders the shared trace-node attributes for EXPLAIN output.
func traceAttrs(rids []lineage.Rid, seedPred, filter expr.Expr, distinct bool) string {
	var b strings.Builder
	switch {
	case rids != nil:
		fmt.Fprintf(&b, " seeds=%d rids", len(rids))
	case seedPred != nil:
		fmt.Fprintf(&b, " seeds=(%s)", seedPred)
	default:
		b.WriteString(" seeds=all")
	}
	if filter != nil {
		fmt.Fprintf(&b, " filter=%s", filter)
	}
	if distinct {
		b.WriteString(" distinct")
	}
	return b.String()
}

func formatAggs(aggs []AggDef) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		s := fmt.Sprintf("%s(%s)", a.Fn, arg)
		if a.Filter != nil {
			s += fmt.Sprintf(" filter=%s", a.Filter)
		}
		parts[i] = s + " AS " + a.OutName(i)
	}
	return strings.Join(parts, ", ")
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
