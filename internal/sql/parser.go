package sql

import (
	"fmt"
	"strconv"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/serr"
)

// Stmt is a parsed SELECT statement.
type Stmt struct {
	// Explain is set when the statement was prefixed with EXPLAIN: the
	// front end renders the logical plan and the optimizer trace instead of
	// executing the query.
	Explain bool
	Items   []SelectItem
	From    FromItem
	Joins   []Join
	Where   expr.Expr // nil if absent
	GroupBy []ColRef
	Having  expr.Expr  // nil if absent
	OrderBy []OrderKey // nil if absent
	Limit   int        // -1 if absent
}

// FromItem is a relation source: a base table, an aggregate subquery with an
// alias, or a lineage trace (LINEAGE BACKWARD/FORWARD).
type FromItem struct {
	Table string     // base table name ("" for subqueries and traces)
	Sub   *Stmt      // aggregate subquery ((SELECT ...) AS alias)
	Alias string     // subquery alias, or optional table alias
	Trace *TraceItem // LINEAGE BACKWARD/FORWARD source
}

// TraceItem is a lineage-consuming source:
//
//	LINEAGE BACKWARD (SELECT ... OF table [WHERE seedpred])
//	LINEAGE FORWARD  (SELECT ... OF table [WHERE seedpred])
//
// Backward produces the rows of table that contributed to the traced query's
// output (the seed predicate selects the traced output rows); Forward
// produces the traced query's output rows that depend on table's rows (the
// seed predicate selects the base rows). No seed predicate traces everything.
type TraceItem struct {
	Backward bool
	Sub      *Stmt     // the traced query
	Table    string    // the base relation traced into (backward) / from (forward)
	Seed     expr.Expr // nil = all seeds
}

// Name returns the source's reference name (alias, or the table name).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	if f.Trace != nil {
		return f.Trace.Table
	}
	return f.Table
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// SelectItem is one projection: either a group-by column or an aggregate.
type SelectItem struct {
	// Col is set for plain column references.
	Col *ColRef
	// Agg is set for aggregate calls.
	Agg *AggItem
}

// ColRef is a possibly table-qualified column.
type ColRef struct {
	Table string // "" if unqualified
	Col   string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// AggItem is an aggregate call in the select list.
type AggItem struct {
	Fn       ops.AggFn
	Distinct bool
	Arg      expr.Expr // nil for COUNT(*)
	Alias    string
}

// Join is JOIN <table | (SELECT ...) AS alias> ON <left.col> = <right.col>.
type Join struct {
	Source   FromItem
	LeftRef  ColRef
	RightRef ColRef
}

type parser struct {
	toks  []token
	i     int
	depth int
}

// maxDepth bounds expression-tree recursion. Without it, adversarial input
// like a few thousand opening parens (found by FuzzParse) recurses once per
// paren and can exhaust the goroutine stack; deeper nesting than this has no
// legitimate use in the supported SQL subset.
const maxDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errf("expression nesting deeper than %d", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// errf builds a structured Invalid error (serr.E) anchored at the current
// token's byte offset in the statement source, so protocol layers can report
// where a statement went wrong without parsing message strings.
func (p *parser) errf(format string, args ...any) error {
	return serr.At(serr.Invalid, p.peek().pos, "sql: "+format, args...)
}

// ParseExpr parses a standalone predicate in the SQL expression grammar
// (comparisons, AND/OR/NOT, IN lists, arithmetic operands, YEAR/MONTH/SQRT,
// :name parameters). The server's trace endpoints use it for seed and
// consuming predicates sent as strings.
func ParseExpr(src string) (expr.Expr, error) {
	return parseStandalone(src, func(p *parser) (expr.Expr, error) { return p.orExpr() })
}

// ParseScalarExpr parses a standalone scalar expression (a column,
// arithmetic, YEAR/MONTH/SQRT, literals, :name parameters) — the aggregate
// argument grammar, where a bare column is valid and comparisons are not.
func ParseScalarExpr(src string) (expr.Expr, error) {
	return parseStandalone(src, func(p *parser) (expr.Expr, error) { return p.addExpr() })
}

func parseStandalone(src string, parse func(*parser) (expr.Expr, error)) (expr.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := parse(p)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

// Parse parses one statement: [EXPLAIN] SELECT ... .
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKeyword("EXPLAIN")
	st, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.peek().text)
	}
	st.Explain = explain
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}

// peekWord reports whether the token at offset off is an identifier
// matching the contextual word w (case-insensitive). LINEAGE / BACKWARD /
// FORWARD / OF are contextual, not reserved: they only act as keywords
// where the trace grammar expects them.
func (p *parser) peekWord(off int, w string) bool {
	if p.i+off >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+off]
	return t.kind == tokIdent && strings.EqualFold(t.text, w)
}

func (p *parser) acceptWord(w string) bool {
	if p.peekWord(0, w) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return p.errf("expected %s, got %q", w, p.peek().text)
	}
	return nil
}

func (p *parser) selectStmt() (*Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Stmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.fromItem()
	if err != nil {
		return nil, err
	}
	st.From = from
	for p.acceptKeyword("JOIN") {
		j, err := p.join()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, j)
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Col: c}
			if p.acceptKeyword("DESC") {
				k.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, k)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokInt {
			return nil, p.errf("LIMIT expects an integer, got %q", t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

// fromItem parses a relation source: an identifier, an aggregate subquery
// "( SELECT ... ) [AS] alias", or a lineage trace
// "LINEAGE BACKWARD|FORWARD ( SELECT ... OF table [WHERE pred] ) [[AS] alias]".
func (p *parser) fromItem() (FromItem, error) {
	// "LINEAGE BACKWARD(" / "LINEAGE FORWARD(" introduces a trace source;
	// a lone identifier "lineage" stays a table name.
	if p.peekWord(0, "LINEAGE") && (p.peekWord(1, "BACKWARD") || p.peekWord(1, "FORWARD")) {
		p.i++
		return p.traceItem()
	}
	if p.acceptSymbol("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return FromItem{}, p.errf("subquery needs an alias: %w", err)
		}
		return FromItem{Sub: sub, Alias: alias}, nil
	}
	table, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	return FromItem{Table: table}, nil
}

// traceItem parses the body of a LINEAGE source (the LINEAGE keyword is
// already consumed). The traced subquery ends at the OF keyword, which no
// SELECT clause can begin with; the optional WHERE after the table is the
// seed predicate.
func (p *parser) traceItem() (FromItem, error) {
	backward := true
	switch {
	case p.acceptWord("BACKWARD"):
	case p.acceptWord("FORWARD"):
		backward = false
	default:
		return FromItem{}, p.errf("LINEAGE expects BACKWARD or FORWARD, got %q", p.peek().text)
	}
	if err := p.expectSymbol("("); err != nil {
		return FromItem{}, err
	}
	sub, err := p.selectStmt()
	if err != nil {
		return FromItem{}, err
	}
	if err := p.expectWord("OF"); err != nil {
		return FromItem{}, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	tr := &TraceItem{Backward: backward, Sub: sub, Table: table}
	if p.acceptKeyword("WHERE") {
		seed, err := p.orExpr()
		if err != nil {
			return FromItem{}, err
		}
		tr.Seed = seed
	}
	if err := p.expectSymbol(")"); err != nil {
		return FromItem{}, err
	}
	item := FromItem{Trace: tr}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) join() (Join, error) {
	src, err := p.fromItem()
	if err != nil {
		return Join{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return Join{}, err
	}
	l, err := p.colRef()
	if err != nil {
		return Join{}, err
	}
	if err := p.expectSymbol("="); err != nil {
		return Join{}, err
	}
	r, err := p.colRef()
	if err != nil {
		return Join{}, err
	}
	return Join{Source: src, LeftRef: l, RightRef: r}, nil
}

func (p *parser) colRef() (ColRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: name, Col: col}, nil
	}
	return ColRef{Col: name}, nil
}

var aggKeywords = map[string]ops.AggFn{
	"COUNT": ops.Count, "SUM": ops.Sum, "AVG": ops.Avg, "MIN": ops.Min, "MAX": ops.Max,
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.peek().kind == tokKeyword {
		if fn, ok := aggKeywords[p.peek().text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return SelectItem{}, err
			}
			agg := &AggItem{Fn: fn}
			switch {
			case fn == ops.Count && p.acceptSymbol("*"):
				// COUNT(*)
			case fn == ops.Count && p.acceptKeyword("DISTINCT"):
				arg, err := p.addExpr()
				if err != nil {
					return SelectItem{}, err
				}
				agg.Fn = ops.CountDistinct
				agg.Distinct = true
				agg.Arg = arg
			default:
				arg, err := p.addExpr()
				if err != nil {
					return SelectItem{}, err
				}
				agg.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return SelectItem{}, err
				}
				agg.Alias = alias
			}
			return SelectItem{Agg: agg}, nil
		}
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: &c}, nil
}

// Expression grammar: or → and → not → cmp → add → mul → unary.

func (p *parser) orExpr() (expr.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.Not{E: inner}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.Eq, "<>": expr.Ne, "!=": expr.Ne,
	"<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	if p.acceptSymbol("(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		// A parenthesized boolean may continue with AND/OR at the caller.
		return inner, nil
	}
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var set []string
		for {
			if p.peek().kind != tokString {
				return nil, p.errf("IN list supports string literals, got %q", p.peek().text)
			}
			set = append(set, p.next().text)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return expr.InStr{E: l, Set: set}, nil
	}
	return nil, p.errf("expected comparison near %q", p.peek().text)
}

func (p *parser) addExpr() (expr.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Add, L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Mul, L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Div, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return expr.IntLit{V: v}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return expr.FloatLit{V: v}, nil
	case tokString:
		p.next()
		return expr.StrLit{V: t.text}, nil
	case tokSymbol:
		switch t.text {
		case "(":
			p.next()
			inner, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return inner, nil
		case ":":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return expr.Param{Name: name}, nil
		}
	case tokKeyword:
		switch t.text {
		case "YEAR", "MONTH", "SQRT":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			inner, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			switch t.text {
			case "YEAR":
				return expr.Year{E: inner}, nil
			case "MONTH":
				return expr.Month{E: inner}, nil
			default:
				return expr.Sqrt{E: inner}, nil
			}
		}
	case tokIdent:
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		// Qualified references compile against a single relation, so the
		// qualifier only disambiguates; the column name is what resolves.
		_ = c.Table
		return expr.Col{Name: c.Col}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// String renders the statement (debugging).
func (st *Stmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range st.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Col != nil {
			b.WriteString(it.Col.String())
		} else {
			fmt.Fprintf(&b, "%s(...)", it.Agg.Fn)
		}
	}
	if st.From.Sub != nil {
		fmt.Fprintf(&b, " FROM (%s) %s", st.From.Sub, st.From.Alias)
	} else {
		fmt.Fprintf(&b, " FROM %s", st.From.Name())
	}
	return b.String()
}
