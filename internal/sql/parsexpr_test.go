package sql

import (
	"strings"
	"testing"

	"smoke/internal/serr"
)

func TestParseExprPredicates(t *testing.T) {
	for _, src := range []string{
		"amount < 25",
		"region = 'emea' AND amount >= 10",
		"k IN ('a', 'b') OR NOT (v > 1.5)",
		"YEAR(d) = 1995",
		"amount < :cutoff",
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParseScalarExpr(t *testing.T) {
	for _, src := range []string{"amount", "amount * 2 - 1", "SQRT(v)", ":p"} {
		if _, err := ParseScalarExpr(src); err != nil {
			t.Errorf("ParseScalarExpr(%q): %v", src, err)
		}
	}
	// A bare column is not a predicate.
	if _, err := ParseExpr("amount"); err == nil {
		t.Error("ParseExpr accepted a bare column as a predicate")
	}
	// Trailing garbage is rejected.
	if _, err := ParseScalarExpr("amount amount"); err == nil {
		t.Error("ParseScalarExpr accepted trailing tokens")
	}
}

// Parse errors are structured (serr.Invalid) and carry the byte offset of
// the offending token, which the server surfaces as the "pos" field.
func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantPos int // byte offset of the token the error should point at
	}{
		{"SELECT FROM t", 7},                        // missing select list → error at FROM
		{"SELECT COUNT(*) AS n FRM t", 21},          // misspelled FROM
		{"SELECT COUNT(*) AS n FROM t GROUP 9", 34}, // expected BY
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		if kind := serr.KindOf(err); kind != serr.Invalid {
			t.Errorf("Parse(%q) kind = %v, want Invalid", c.src, kind)
		}
		if pos := serr.PosOf(err); pos != c.wantPos {
			t.Errorf("Parse(%q) pos = %d (%v), want %d", c.src, pos, err, c.wantPos)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Errorf("Parse(%q) error does not render its offset: %v", c.src, err)
		}
	}
}
