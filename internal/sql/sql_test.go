package sql_test

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"smoke/internal/core"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/sql"
	"smoke/internal/tpch"
)

func zipfDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.Open()
	db.Register(datagen.Zipf("zipf", 1.0, 2000, 10, 1))
	return db
}

func TestParseMicrobenchQuery(t *testing.T) {
	st, err := sql.Parse(`SELECT z, COUNT(*), SUM(v), SUM(v*v), SUM(SQRT(v)), MIN(v), MAX(v)
		FROM zipf GROUP BY z`)
	if err != nil {
		t.Fatal(err)
	}
	if st.From.Name() != "zipf" || len(st.Items) != 7 || len(st.GroupBy) != 1 {
		t.Fatalf("parsed shape wrong: %+v", st)
	}
	if st.Items[0].Col == nil || st.Items[1].Agg == nil {
		t.Fatal("item kinds wrong")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := sql.Parse("SELECT 'unterminated FROM t"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := sql.Parse("SELECT a FROM t WHERE a = ~1"); err == nil {
		t.Error("bad character should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"FROM t",
		"SELECT COUNT(* FROM t",
		"SELECT a, FROM t",
		"SELECT COUNT(*) FROM t GROUP BY",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t JOIN",
		"SELECT COUNT(*) FROM t extra",
		"SELECT COUNT(*) FROM t WHERE a IN (1, 2)",
	}
	for _, src := range bad {
		if _, err := sql.Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestEndToEndGroupBy(t *testing.T) {
	db := zipfDB(t)
	q, err := sql.Compile(db, "SELECT z, COUNT(*) AS cnt, SUM(v) AS total FROM zipf WHERE v < 50 GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	// Reference via the builder API.
	want, err := db.Query().From("zipf", mustParseExpr(t, "v < 50")).
		GroupBy("z").
		Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != want.Out.N {
		t.Fatalf("SQL path %d groups, builder %d", res.Out.N, want.Out.N)
	}
	// Same lineage, matched by key.
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Int(0, o)
		got, err := res.Backward("zipf", []core.Rid{core.Rid(o)})
		if err != nil {
			t.Fatal(err)
		}
		var ref []core.Rid
		for wo := 0; wo < want.Out.N; wo++ {
			if want.Out.Int(0, wo) == key {
				ref, _ = want.Backward("zipf", []core.Rid{core.Rid(wo)})
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("lineage differs for group %d", key)
		}
	}
}

// mustParseExpr extracts a predicate from a throwaway statement.
func mustParseExpr(t *testing.T, pred string) expr.Expr {
	t.Helper()
	st, err := sql.Parse("SELECT COUNT(*) FROM zipf WHERE " + pred + " GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	return st.Where
}

func TestEndToEndTPCHQ1(t *testing.T) {
	tp := tpch.Generate(0.002, 42)
	db := core.Open()
	db.Register(tp.Lineitem)
	q, err := sql.Compile(db, `
		SELECT l_returnflag, l_linestatus,
		       SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		       AVG(l_discount) AS avg_disc,
		       COUNT(*) AS count_order
		FROM lineitem
		WHERE l_shipdate < 10561
		GROUP BY l_returnflag, l_linestatus`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N == 0 || res.Out.N > 4 {
		t.Fatalf("Q1 groups = %d", res.Out.N)
	}
	// Spot check: counts sum to the filtered cardinality.
	sd := tp.Lineitem.Schema.MustCol("l_shipdate")
	want := int64(0)
	for i := 0; i < tp.Lineitem.N; i++ {
		if tp.Lineitem.Int(sd, i) < 10561 {
			want++
		}
	}
	cc := res.Out.Schema.MustCol("count_order")
	got := int64(0)
	for o := 0; o < res.Out.N; o++ {
		got += res.Out.Int(cc, o)
	}
	if got != want {
		t.Fatalf("counts sum to %d, want %d", got, want)
	}
}

func TestEndToEndJoin(t *testing.T) {
	tp := tpch.Generate(0.002, 42)
	db := core.Open()
	db.Register(tp.Customer)
	db.Register(tp.Orders)
	db.Register(tp.Lineitem)
	q, err := sql.Compile(db, `
		SELECT o_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM customer
		JOIN orders ON c_custkey = o_custkey
		JOIN lineitem ON o_orderkey = l_orderkey
		WHERE c_mktsegment = 'BUILDING'
		GROUP BY o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N == 0 {
		t.Fatal("no groups")
	}
	rids, err := res.Backward("customer", []core.Rid{0})
	if err != nil || len(rids) == 0 {
		t.Fatalf("customer lineage: %v, %v", rids, err)
	}
	seg := tp.Customer.Schema.MustCol("c_mktsegment")
	for _, r := range rids {
		if tp.Customer.Str(seg, int(r)) != "BUILDING" {
			t.Fatal("lineage violates pushed-down filter")
		}
	}
}

func TestJoinOnEitherOrder(t *testing.T) {
	tp := tpch.Generate(0.001, 7)
	db := core.Open()
	db.Register(tp.Orders)
	db.Register(tp.Lineitem)
	for _, on := range []string{
		"ON o_orderkey = l_orderkey",
		"ON l_orderkey = o_orderkey",
		"ON orders.o_orderkey = lineitem.l_orderkey",
	} {
		q, err := sql.Compile(db, "SELECT l_shipmode, COUNT(*) AS c FROM orders JOIN lineitem "+on+" GROUP BY l_shipmode")
		if err != nil {
			t.Fatalf("%s: %v", on, err)
		}
		res, err := q.Run(core.CaptureOptions{Mode: ops.None})
		if err != nil {
			t.Fatalf("%s: %v", on, err)
		}
		cc := res.Out.Schema.MustCol("c")
		total := int64(0)
		for o := 0; o < res.Out.N; o++ {
			total += res.Out.Int(cc, o)
		}
		if total != int64(tp.Lineitem.N) {
			t.Fatalf("%s: join lost rows (%d of %d)", on, total, tp.Lineitem.N)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	db := zipfDB(t)
	bad := []string{
		"SELECT z, COUNT(*) FROM nope GROUP BY z",
		"SELECT q, COUNT(*) FROM zipf GROUP BY z",             // select col not grouped
		"SELECT z FROM zipf GROUP BY z",                       // no aggregate
		"SELECT z, COUNT(*) FROM zipf WHERE 1 < 2 GROUP BY z", // constant predicate
	}
	for _, src := range bad {
		if _, err := sql.Compile(db, src); err == nil {
			t.Errorf("Compile(%q) should error", src)
		}
	}
}

func TestParameterizedQuery(t *testing.T) {
	db := zipfDB(t)
	q, err := sql.Compile(db, "SELECT z, COUNT(*) AS c FROM zipf WHERE v < :cap GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.None, Params: map[string]any{"cap": 25.0}})
	if err != nil {
		t.Fatal(err)
	}
	cc := res.Out.Schema.MustCol("c")
	total := int64(0)
	for o := 0; o < res.Out.N; o++ {
		total += res.Out.Int(cc, o)
	}
	rel, _ := db.Table("zipf")
	want := int64(0)
	vc := rel.Schema.MustCol("v")
	for i := 0; i < rel.N; i++ {
		if rel.Float(vc, i) < 25.0 {
			want++
		}
	}
	if total != want {
		t.Fatalf("parameterized count %d, want %d", total, want)
	}
}

func TestCountDistinctAndFunctions(t *testing.T) {
	tp := tpch.Generate(0.001, 7)
	db := core.Open()
	db.Register(tp.Lineitem)
	q, err := sql.Compile(db, `SELECT l_shipmode, COUNT(DISTINCT l_returnflag) AS flags,
		MIN(l_quantity) AS mn, MAX(l_quantity) AS mx
		FROM lineitem GROUP BY l_shipmode`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.None})
	if err != nil {
		t.Fatal(err)
	}
	fc := res.Out.Schema.MustCol("flags")
	for o := 0; o < res.Out.N; o++ {
		d := res.Out.Int(fc, o)
		if d < 1 || d > 3 {
			t.Fatalf("distinct flags = %d", d)
		}
		mn := res.Out.Float(res.Out.Schema.MustCol("mn"), o)
		mx := res.Out.Float(res.Out.Schema.MustCol("mx"), o)
		if mn > mx || math.IsInf(mn, 0) {
			t.Fatal("min/max wrong")
		}
	}
}

func TestStatementString(t *testing.T) {
	st, err := sql.Parse("SELECT z, COUNT(*) FROM zipf GROUP BY z")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.String(), "FROM zipf") {
		t.Errorf("String() = %q", st.String())
	}
}
