package sql

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary input at the SQL front-end. The contract under
// fuzzing: Parse never panics (it returns an error for anything outside the
// supported subset), and a successfully parsed statement renders via String
// without panicking. The checked-in corpus under testdata/fuzz/FuzzParse
// holds regression inputs (deep nesting, truncated statements, exotic
// literals) that previously stressed the lexer or parser.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT b, COUNT(*) FROM fact GROUP BY b",
		"SELECT label, SUM(v) AS s FROM dim JOIN fact ON dim.g = fact.k WHERE v <= 10 GROUP BY label",
		"SELECT COUNT(DISTINCT b) FROM t WHERE s IN ('a', 'b''c') AND NOT (v < 1 OR v > 2)",
		"SELECT MIN(v + 2 * (w - 1)) FROM t WHERE YEAR(d) = 1998 GROUP BY z",
		"SELECT AVG(SQRT(v)) FROM t WHERE v >= :lo AND v <= :hi GROUP BY k",
		"SELECT COUNT(*) FROM t WHERE a <> 1 AND b != 2 OR c = 3.5",
		"select x from y where z in ('q')",
		"SELECT b, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE k < 2) GROUP BY b",
		"SELECT k, COUNT(*) AS n FROM LINEAGE FORWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE v < 4) tr GROUP BY k",
		"SELECT a FROM LINEAGE BACKWARD(SELECT a FROM LINEAGE BACKWARD(SELECT a, COUNT(*) AS c FROM t GROUP BY a OF t) OF t) GROUP BY a",
		"SELECT a FROM LINEAGE BACKWARD(",
		"SELECT",
		"SELECT * FROM",
		"SELECT ((((((((1))))))))",
		"SELECT COUNT(*) FROM t WHERE s = 'unterminated",
		"SELECT a FROM t WHERE 99999999999999999999999999 = a",
		"SELECT a FROM t WHERE 1.2.3 = a",
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		_ = st.String()
	})
}

// TestParseDepthGuard pins the recursion bound FuzzParse surfaced: a few
// thousand opening parens must fail cleanly instead of exhausting the stack.
func TestParseDepthGuard(t *testing.T) {
	deep := "SELECT a FROM t WHERE " + strings.Repeat("(", 100_000) + "1"
	_, err := Parse(deep)
	if err == nil {
		t.Fatal("deeply nested input must be rejected")
	}
	if !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("want nesting-depth error, got: %v", err)
	}
	// NOT chains recurse through a different production.
	nots := "SELECT a FROM t WHERE " + strings.Repeat("NOT ", 100_000) + "a = 1"
	if _, err := Parse(nots); err == nil {
		t.Fatal("deep NOT chain must be rejected")
	}
	// Within the bound, nesting still parses.
	ok := "SELECT a FROM t WHERE " + strings.Repeat("(", 50) + "a = 1" + strings.Repeat(")", 50)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("moderate nesting should parse: %v", err)
	}
}
