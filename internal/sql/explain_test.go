package sql_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"smoke/internal/core"
	"smoke/internal/ops"
	"smoke/internal/sql"
	"smoke/internal/storage"
)

// explainDB builds a deterministic star dataset: dim(g pk, label) and
// fact(k fk, v).
func explainDB(t *testing.T) *core.DB {
	t.Helper()
	dim := storage.NewEmpty("dim", storage.Schema{
		{Name: "g", Type: storage.TInt},
		{Name: "label", Type: storage.TString},
	})
	for i := 0; i < 5; i++ {
		dim.AppendRow(i, "L"+string(rune('0'+i%2)))
	}
	fact := storage.NewEmpty("fact", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	})
	for i := 0; i < 20; i++ {
		fact.AppendRow(i%5, float64(i))
	}
	db := core.Open()
	db.Register(dim)
	db.Register(fact)
	return db
}

// TestExplainGolden pins the EXPLAIN rendering: the initial logical plan and
// the plan after every optimizer rule that fired. Regenerate the golden files
// with UPDATE_GOLDEN=1 go test ./internal/sql/.
func TestExplainGolden(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		name string
		src  string
	}{
		{"fused_join", `EXPLAIN SELECT label, COUNT(*) AS c, SUM(v) AS s
			FROM dim JOIN fact ON g = k
			WHERE v < 12 AND label = 'L0'
			GROUP BY label`},
		{"multiblock_subquery", `EXPLAIN SELECT label, SUM(cnt) AS total
			FROM (SELECT k, COUNT(*) AS cnt FROM fact WHERE v < 15 GROUP BY k) s
			JOIN dim ON s.k = g
			GROUP BY label
			HAVING total >= 1
			ORDER BY total DESC, label
			LIMIT 2`},
		{"single_table_having_key", `EXPLAIN SELECT k, COUNT(*) AS c FROM fact GROUP BY k HAVING k < 3 ORDER BY k`},
		// A backward consuming query: the trace-rewrite rule replaces the
		// key-predicate trace over the unbound aggregation with its
		// scan-and-filter equivalent, and the consuming WHERE sinks through
		// the trace into the scan.
		{"lineage_backward", `EXPLAIN SELECT k, SUM(v) AS s
			FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE k < 2)
			WHERE v < 10
			GROUP BY k`},
		// A forward trace stays an index trace (EXPLAIN shows the trace node).
		{"lineage_forward", `EXPLAIN SELECT k, COUNT(*) AS n
			FROM LINEAGE FORWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE v < 4)
			GROUP BY k`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := sql.Explain(db, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "explain_"+tc.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN output changed.\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestAmbiguousJoinKeyAcrossJoins pins qualified join-key resolution: "k"
// exists in both ta and tb, so the third source joins on ta.k — the
// materialized prefix renames the colliding columns and the recorded
// qualifier must pick the right one.
func TestAmbiguousJoinKeyAcrossJoins(t *testing.T) {
	ta := storage.NewEmpty("ta", storage.Schema{
		{Name: "k", Type: storage.TInt}, {Name: "x", Type: storage.TInt}})
	tb := storage.NewEmpty("tb", storage.Schema{
		{Name: "k", Type: storage.TInt}, {Name: "y", Type: storage.TInt}})
	tc := storage.NewEmpty("tc", storage.Schema{
		{Name: "c", Type: storage.TInt}, {Name: "z", Type: storage.TString}})
	for i := 0; i < 6; i++ {
		ta.AppendRow(i, i*10)
		tb.AppendRow(i, i*100)
		tc.AppendRow(i, "Z"+string(rune('0'+i%2)))
	}
	db := core.Open()
	db.Register(ta)
	db.Register(tb)
	db.Register(tc)
	q, err := sql.Compile(db, `SELECT z, COUNT(*) AS cnt FROM ta JOIN tb ON ta.k = tb.k JOIN tc ON ta.k = c GROUP BY z`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	cc := res.Out.Schema.MustCol("cnt")
	for o := 0; o < res.Out.N; o++ {
		total += res.Out.Int(cc, o)
	}
	if total != 6 {
		t.Fatalf("join lost rows: %d of 6", total)
	}
	rids, err := res.Backward("tc", []core.Rid{0})
	if err != nil || len(rids) != 3 {
		t.Fatalf("tc lineage = %v, %v", rids, err)
	}
}

// TestSameBaseBothSidesMergesLineage pins the contribution merge: when both
// join sides are subqueries over the same base table, backward/forward
// lineage must include both sides' rows (a map overwrite used to drop the
// left side's).
func TestSameBaseBothSidesMergesLineage(t *testing.T) {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "z", Type: storage.TInt}, {Name: "v", Type: storage.TInt}})
	rel.AppendRow(1, 1)
	rel.AppendRow(1, 2)
	rel.AppendRow(2, 2)
	db := core.Open()
	db.Register(rel)
	q, err := sql.Compile(db, `
		SELECT z, SUM(c) AS sc, SUM(d) AS sd
		FROM (SELECT z, COUNT(*) AS c FROM t GROUP BY z) a
		JOIN (SELECT v, COUNT(*) AS d FROM t GROUP BY v) b ON z = v
		GROUP BY z ORDER BY z`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("rows = %d", res.Out.N)
	}
	// Output z=1: left subquery contributes rids {0,1} (z=1), right
	// contributes rid {0} (v=1).
	rids, err := res.Capture().BackwardDistinct("t", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	if !reflect.DeepEqual(rids, []core.Rid{0, 1}) {
		t.Fatalf("backward of z=1 = %v, want both sides' contributions [0 1]", rids)
	}
	// Output z=2: left {2}, right {1,2}.
	rids, err = res.Capture().BackwardDistinct("t", []core.Rid{1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	if !reflect.DeepEqual(rids, []core.Rid{1, 2}) {
		t.Fatalf("backward of z=2 = %v, want [1 2]", rids)
	}
	// Forward of base rid 1 (z=1, v=2): left side feeds output 0, right
	// side feeds output 1.
	outs, err := res.Capture().ForwardDistinct("t", []core.Rid{1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	if !reflect.DeepEqual(outs, []core.Rid{0, 1}) {
		t.Fatalf("forward of rid 1 = %v, want [0 1]", outs)
	}
}

// TestSQLSingleTablePushdownOptions pins that SQL-compiled single-table
// blocks still serve the §4.2 capture push-downs (data skipping here).
func TestSQLSingleTablePushdownOptions(t *testing.T) {
	db := explainDB(t)
	q, err := sql.Compile(db, `SELECT k, COUNT(*) AS c FROM fact GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject, PartitionBy: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	part, err := res.BackwardPartition(0, []any{0.0})
	if err != nil {
		t.Fatal(err)
	}
	fact, _ := db.Table("fact")
	for _, r := range part {
		if fact.Float(1, int(r)) != 0.0 {
			t.Fatal("partition returned wrong rids")
		}
	}
	// Multi-block SQL still rejects push-down options.
	mb, err := sql.Compile(db, `SELECT label, COUNT(*) AS c FROM dim JOIN fact ON g = k GROUP BY label`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Run(core.CaptureOptions{Mode: ops.Inject, PartitionBy: []string{"v"}}); err == nil {
		t.Fatal("multi-table push-down should error")
	}
}

func TestExplainStatementDoesNotExecute(t *testing.T) {
	db := explainDB(t)
	if _, err := sql.Compile(db, "EXPLAIN SELECT k, COUNT(*) AS c FROM fact GROUP BY k"); err == nil {
		t.Fatal("Compile must reject EXPLAIN statements")
	}
}

// TestMultiBlockSQLEndToEnd runs the acceptance query shape — group-by over a
// join over a grouped subquery, with HAVING and LIMIT — and checks output and
// both lineage directions against hand-computed expectations.
func TestMultiBlockSQLEndToEnd(t *testing.T) {
	db := explainDB(t)
	q, err := sql.Compile(db, `
		SELECT label, SUM(cnt) AS total
		FROM (SELECT k, COUNT(*) AS cnt FROM fact WHERE v < 15 GROUP BY k) s
		JOIN dim ON s.k = g
		GROUP BY label
		HAVING total >= 1
		ORDER BY total DESC, label
		LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	// fact rows with v<15 are rids 0..14, k = rid%5. Groups k=0..4 get 3
	// rows each; dim labels: g even -> "L0" (g=0,2,4: 9 rows), g odd ->
	// "L1" (g=1,3: 6 rows).
	if res.Out.N != 2 {
		t.Fatalf("rows = %d", res.Out.N)
	}
	lc := res.Out.Schema.MustCol("label")
	tc := res.Out.Schema.MustCol("total")
	if res.Out.Str(lc, 0) != "L0" || res.Out.Float(tc, 0) != 9 {
		t.Fatalf("row 0 = %v %v", res.Out.Str(lc, 0), res.Out.Float(tc, 0))
	}
	if res.Out.Str(lc, 1) != "L1" || res.Out.Float(tc, 1) != 6 {
		t.Fatalf("row 1 = %v %v", res.Out.Str(lc, 1), res.Out.Float(tc, 1))
	}
	// Backward lineage of row 0 reaches exactly the fact base rows with
	// v<15 and even k.
	rids, err := res.Backward("fact", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 9 {
		t.Fatalf("fact lineage of row 0: %d rids", len(rids))
	}
	fact, _ := db.Table("fact")
	for _, r := range rids {
		if fact.Float(1, int(r)) >= 15 || fact.Int(0, int(r))%2 != 0 {
			t.Fatalf("bad lineage rid %d", r)
		}
	}
	// Forward lineage: fact rid 1 (k=1, "L1") maps to output row 1; a
	// filtered-out row (v>=15) maps nowhere.
	fw, err := res.Forward("fact", []core.Rid{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fw) != 1 || fw[0] != 1 {
		t.Fatalf("forward of fact rid 1 = %v", fw)
	}
	fw, err = res.Forward("fact", []core.Rid{17})
	if err != nil || len(fw) != 0 {
		t.Fatalf("forward of filtered rid = %v, %v", fw, err)
	}
	// dim lineage of row 0: the three even-g dim rows, one copy per
	// contributing fact row.
	drids, err := res.BackwardDistinct("dim", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(drids) != 3 {
		t.Fatalf("distinct dim lineage of row 0 = %v", drids)
	}
}
