package sql

import (
	"fmt"
	"strings"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/plan"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// Compile parses src and lowers it onto the logical plan layer, producing a
// query ready to Run with any capture options. The front end builds a naive
// plan (filters above the join tree); the optimizer — run by core.Query.Run —
// pushes predicates into scans, detects pk-fk joins, and fuses SPJA blocks
// onto the fused executor.
func Compile(db *core.DB, src string) (*core.Query, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileStmt(db, st)
}

// CompileStmt is Compile over an already-parsed statement.
func CompileStmt(db *core.DB, st *Stmt) (*core.Query, error) {
	if st.Explain {
		return nil, serr.New(serr.Invalid, "sql: EXPLAIN statements do not execute; use sql.Explain")
	}
	n, err := Lower(db, st)
	if err != nil {
		return nil, err
	}
	return db.QueryPlan(n), nil
}

// Explain parses src (with or without a leading EXPLAIN keyword), lowers it,
// and renders the logical plan before and after each optimizer rule that
// fired.
func Explain(db *core.DB, src string) (string, error) {
	st, err := Parse(src)
	if err != nil {
		return "", err
	}
	return ExplainStmt(db, st)
}

// ExplainStmt is Explain over an already-parsed statement.
func ExplainStmt(db *core.DB, st *Stmt) (string, error) {
	n, err := Lower(db, st)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("logical plan:\n")
	b.WriteString(plan.Format(n))
	_, traces := plan.Optimize(n, plan.Opts{Catalog: db.Catalog()})
	for _, tr := range traces {
		fmt.Fprintf(&b, "\nafter %s:\n%s", tr.Rule, tr.Plan)
	}
	if len(traces) == 0 {
		b.WriteString("\n(no optimizer rule fired)\n")
	}
	return b.String(), nil
}

// source is one FROM/JOIN relation during lowering: its reference name (alias
// or table name), its plan subtree, and its output schema.
type source struct {
	name   string
	node   plan.Node
	schema storage.Schema
}

// Lower turns a parsed statement into an (unoptimized) logical plan:
// scans/subqueries joined left-deep, the WHERE predicate as a filter above
// the join tree, a group-by, and HAVING/ORDER BY/LIMIT residue on top.
func Lower(db *core.DB, st *Stmt) (plan.Node, error) {
	first, err := lowerSource(db, st.From)
	if err != nil {
		return nil, err
	}
	srcs := []source{first}
	n := first.node

	for _, j := range st.Joins {
		s, err := lowerSource(db, j.Source)
		if err != nil {
			return nil, err
		}
		// Normalize the ON condition: one side must resolve within the
		// already-joined prefix, the other within the joined source. Accept
		// either order.
		leftRef, rightRef := j.LeftRef, j.RightRef
		if !refResolves(leftRef, srcs) || !refResolves(rightRef, []source{s}) {
			leftRef, rightRef = rightRef, leftRef
			if !refResolves(leftRef, srcs) {
				return nil, serr.New(serr.Invalid, "sql: join condition for %s does not reference the query prefix", s.name)
			}
			if !refResolves(rightRef, []source{s}) {
				return nil, serr.New(serr.Invalid, "sql: join condition for %s must reference %s on one side", s.name, s.name)
			}
		}
		n = plan.Join{Left: n, Right: s.node, LeftKey: leftRef.Col, RightKey: rightRef.Col,
			LeftQual: sourceOf(leftRef, srcs)}
		srcs = append(srcs, s)
	}

	if st.Where != nil {
		for _, conj := range conjuncts(st.Where) {
			if len(expr.Columns(conj)) == 0 {
				return nil, serr.New(serr.Unsupported, "sql: constant predicate %s is not supported", conj)
			}
		}
		n = plan.Filter{Child: n, Pred: st.Where}
	}

	groupSet := map[string]bool{}
	var keys []string
	for _, g := range st.GroupBy {
		keys = append(keys, g.Col)
		groupSet[g.Col] = true
	}
	gb := plan.GroupBy{Child: n, Keys: keys}
	aggIdx := 0
	for _, it := range st.Items {
		switch {
		case it.Col != nil:
			if !groupSet[it.Col.Col] {
				return nil, serr.New(serr.Invalid, "sql: select column %s must appear in GROUP BY", it.Col)
			}
		case it.Agg != nil:
			name := it.Agg.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", it.Agg.Fn, aggIdx)
			}
			gb.Aggs = append(gb.Aggs, plan.AggDef{Fn: it.Agg.Fn, Arg: it.Agg.Arg, Name: name})
			aggIdx++
		}
	}
	if aggIdx == 0 {
		return nil, serr.New(serr.Unsupported, "sql: only aggregation queries are supported; add an aggregate to the select list")
	}
	if len(keys) == 0 {
		return nil, serr.New(serr.Unsupported, "sql: only grouped aggregation queries are supported; add GROUP BY")
	}
	n = gb

	if st.Having != nil {
		// HAVING references output columns (group keys and aggregate
		// aliases); it stays a filter above the aggregation unless the
		// pushdown rule proves it key-only.
		n = plan.Filter{Child: n, Pred: st.Having}
	}
	if len(st.OrderBy) > 0 {
		// ORDER BY references output columns (group keys and aggregate
		// aliases); qualifiers only disambiguate in this grammar and the
		// output schema has plain names, so validate the bare column.
		outSchema, err := plan.OutSchema(n)
		if err != nil {
			return nil, err
		}
		ob := plan.OrderBy{Child: n}
		for _, k := range st.OrderBy {
			if k.Col.Table != "" {
				return nil, serr.New(serr.Invalid, "sql: ORDER BY references output columns; use the unqualified name, not %s", k.Col)
			}
			if outSchema.Col(k.Col.Col) < 0 {
				return nil, serr.New(serr.Invalid, "sql: ORDER BY column %s is not an output column", k.Col)
			}
			ob.Keys = append(ob.Keys, plan.SortKey{Col: k.Col.Col, Desc: k.Desc})
		}
		n = ob
	}
	if st.Limit >= 0 {
		n = plan.Limit{Child: n, N: st.Limit}
	}
	return n, nil
}

// lowerSource lowers one FROM/JOIN item: a base-table scan, a recursively
// lowered aggregate subquery, or a lineage trace.
func lowerSource(db *core.DB, f FromItem) (source, error) {
	if f.Trace != nil {
		sub, err := Lower(db, f.Trace.Sub)
		if err != nil {
			return source{}, serr.New(serr.Invalid, "sql: traced query: %w", err)
		}
		rel, err := db.Table(f.Trace.Table)
		if err != nil {
			return source{}, err
		}
		if f.Trace.Backward {
			// The trace's output rows are base rows of the traced table.
			n := plan.Backward{Source: sub, Table: f.Trace.Table, Rel: rel, SeedPred: f.Trace.Seed}
			return source{name: f.Name(), node: n, schema: rel.Schema}, nil
		}
		schema, err := plan.OutSchema(sub)
		if err != nil {
			return source{}, serr.New(serr.Invalid, "sql: traced query: %w", err)
		}
		n := plan.Forward{Source: sub, Table: f.Trace.Table, Rel: rel, SeedPred: f.Trace.Seed}
		return source{name: f.Name(), node: n, schema: schema}, nil
	}
	if f.Sub != nil {
		sub, err := Lower(db, f.Sub)
		if err != nil {
			return source{}, serr.New(serr.Invalid, "sql: subquery %s: %w", f.Alias, err)
		}
		schema, err := plan.OutSchema(sub)
		if err != nil {
			return source{}, serr.New(serr.Invalid, "sql: subquery %s: %w", f.Alias, err)
		}
		return source{name: f.Alias, node: sub, schema: schema}, nil
	}
	rel, err := db.Table(f.Table)
	if err != nil {
		return source{}, err
	}
	return source{name: f.Name(), node: plan.Scan{Table: f.Table, Rel: rel}, schema: rel.Schema}, nil
}

// refResolves reports whether a (possibly qualified) column reference
// resolves unambiguously within the given sources.
func refResolves(c ColRef, srcs []source) bool {
	if c.Table != "" {
		for _, s := range srcs {
			if s.name == c.Table {
				return s.schema.Col(c.Col) >= 0
			}
		}
		return false
	}
	found := 0
	for _, s := range srcs {
		if s.schema.Col(c.Col) >= 0 {
			found++
		}
	}
	return found == 1
}

// sourceOf returns the name of the source a reference resolves to ("" when
// it cannot be pinned to one). The join lowering records it as the key's
// qualifier so ambiguous key names stay resolvable downstream.
func sourceOf(c ColRef, srcs []source) string {
	if c.Table != "" {
		for _, s := range srcs {
			if s.name == c.Table && s.schema.Col(c.Col) >= 0 {
				return s.name
			}
		}
		return ""
	}
	found := ""
	for _, s := range srcs {
		if s.schema.Col(c.Col) >= 0 {
			if found != "" {
				return ""
			}
			found = s.name
		}
	}
	return found
}

// conjuncts flattens a conjunction tree.
func conjuncts(e expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []expr.Expr{e}
}
