package sql

import (
	"fmt"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/storage"
)

// Compile parses src and lowers it onto the engine facade, producing a query
// ready to Run with any capture options. WHERE conjuncts are pushed down to
// the single table they reference (selections pipeline into scans); join
// predicates must use JOIN ... ON.
func Compile(db *core.DB, src string) (*core.Query, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(db, st)
}

// Lower turns a parsed statement into a core.Query.
func Lower(db *core.DB, st *Stmt) (*core.Query, error) {
	tables := []string{st.From}
	schemas := map[string]storage.Schema{}
	rel, err := db.Table(st.From)
	if err != nil {
		return nil, err
	}
	schemas[st.From] = rel.Schema
	for _, j := range st.Joins {
		rel, err := db.Table(j.Table)
		if err != nil {
			return nil, err
		}
		schemas[j.Table] = rel.Schema
		tables = append(tables, j.Table)
	}

	// Assign WHERE conjuncts to tables.
	filters := map[string]expr.Expr{}
	if st.Where != nil {
		for _, conj := range conjuncts(st.Where) {
			t, err := tableOf(conj, tables, schemas)
			if err != nil {
				return nil, err
			}
			if f, ok := filters[t]; ok {
				filters[t] = expr.And{L: f, R: conj}
			} else {
				filters[t] = conj
			}
		}
	}

	q := db.Query().From(st.From, filters[st.From])
	prefix := []string{st.From}
	for _, j := range st.Joins {
		leftRef, rightRef := j.LeftRef, j.RightRef
		// Normalize: leftRef must resolve within the prefix, rightRef within
		// the joined table. Accept either order in the ON clause.
		lt, lerr := resolveRef(leftRef, prefix, schemas)
		if lerr != nil || !contains(prefix, lt) {
			leftRef, rightRef = rightRef, leftRef
			lt, lerr = resolveRef(leftRef, prefix, schemas)
			if lerr != nil {
				return nil, fmt.Errorf("sql: join condition for %s does not reference the query prefix", j.Table)
			}
		}
		rt, rerr := resolveRef(rightRef, []string{j.Table}, schemas)
		if rerr != nil || rt != j.Table {
			return nil, fmt.Errorf("sql: join condition for %s must reference %s on one side", j.Table, j.Table)
		}
		q = q.Join(j.Table, filters[j.Table], lt, leftRef.Col, rightRef.Col)
		prefix = append(prefix, j.Table)
	}

	groupSet := map[string]bool{}
	var keys []string
	for _, g := range st.GroupBy {
		keys = append(keys, g.Col)
		groupSet[g.Col] = true
	}
	if len(keys) > 0 {
		q = q.GroupBy(keys...)
	}

	aggIdx := 0
	for _, it := range st.Items {
		switch {
		case it.Col != nil:
			if !groupSet[it.Col.Col] {
				return nil, fmt.Errorf("sql: select column %s must appear in GROUP BY", it.Col)
			}
		case it.Agg != nil:
			name := it.Agg.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", it.Agg.Fn, aggIdx)
			}
			q = q.Agg(it.Agg.Fn, it.Agg.Arg, name)
			aggIdx++
		}
	}
	if aggIdx == 0 {
		return nil, fmt.Errorf("sql: only aggregation queries are supported; add an aggregate to the select list")
	}
	return q, nil
}

// conjuncts flattens a conjunction tree.
func conjuncts(e expr.Expr) []expr.Expr {
	if a, ok := e.(expr.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []expr.Expr{e}
}

// tableOf returns the unique table whose schema covers every column of e.
func tableOf(e expr.Expr, tables []string, schemas map[string]storage.Schema) (string, error) {
	cols := expr.Columns(e)
	if len(cols) == 0 {
		return "", fmt.Errorf("sql: constant predicate %s is not supported", e)
	}
	found := ""
	for _, t := range tables {
		all := true
		for _, c := range cols {
			if schemas[t].Col(c) < 0 {
				all = false
				break
			}
		}
		if all {
			if found != "" {
				return "", fmt.Errorf("sql: predicate %s is ambiguous between %s and %s", e, found, t)
			}
			found = t
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: predicate %s references columns from multiple tables; use JOIN ... ON for join conditions", e)
	}
	return found, nil
}

// resolveRef finds the table a column reference belongs to.
func resolveRef(c ColRef, tables []string, schemas map[string]storage.Schema) (string, error) {
	if c.Table != "" {
		if schemas[c.Table].Col(c.Col) < 0 {
			return "", fmt.Errorf("sql: %s has no column %s", c.Table, c.Col)
		}
		return c.Table, nil
	}
	found := ""
	for _, t := range tables {
		if schemas[t].Col(c.Col) >= 0 {
			if found != "" {
				return "", fmt.Errorf("sql: column %s is ambiguous", c.Col)
			}
			found = t
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: column %s not found", c.Col)
	}
	return found, nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
