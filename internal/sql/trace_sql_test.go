package sql_test

import (
	"strings"
	"testing"

	"smoke/internal/core"
	"smoke/internal/ops"
	"smoke/internal/sql"
)

// TestLineageBackwardSQL executes a LINEAGE BACKWARD consuming query
// end-to-end: the traced rows re-aggregate, and the result carries lineage
// back to the base relation.
func TestLineageBackwardSQL(t *testing.T) {
	db := explainDB(t)
	q, err := sql.Compile(db, `SELECT k, COUNT(*) AS n
		FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE k = 3)
		GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 1 {
		t.Fatalf("want 1 group, got %d", res.Out.N)
	}
	kc, nc := res.Out.Schema.MustCol("k"), res.Out.Schema.MustCol("n")
	if res.Out.Int(kc, 0) != 3 || res.Out.Int(nc, 0) != 4 {
		t.Fatalf("got k=%d n=%d, want k=3 n=4", res.Out.Int(kc, 0), res.Out.Int(nc, 0))
	}
	rids, err := res.Backward("fact", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 4 {
		t.Fatalf("backward lineage has %d rids, want 4", len(rids))
	}
	fact, _ := db.Table("fact")
	for _, r := range rids {
		if fact.Cols[0].Ints[r] != 3 {
			t.Fatalf("rid %d is not a k=3 row", r)
		}
	}
}

// TestLineageForwardSQL executes a LINEAGE FORWARD query: groups dependent on
// the seed base rows.
func TestLineageForwardSQL(t *testing.T) {
	db := explainDB(t)
	// v < 2 selects fact rows 0 (k=0) and 1 (k=1): two dependent groups.
	q, err := sql.Compile(db, `SELECT k, COUNT(*) AS n
		FROM LINEAGE FORWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact WHERE v < 2)
		GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("want 2 dependent groups, got %d", res.Out.N)
	}
}

// TestLineageBackwardOverFilteredSubquery pins the generalized
// scan-equivalence seam through SQL: a key-predicate trace over a *filtered*
// aggregation rewrites to one filtered scan, conjoining the subquery's base
// filter with the seed predicate — and the answer matches the unrewritten
// semantics (only k=3 rows that passed v < 15).
func TestLineageBackwardOverFilteredSubquery(t *testing.T) {
	db := explainDB(t)
	const src = `SELECT k, COUNT(*) AS n
		FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact WHERE v < 15 GROUP BY k OF fact WHERE k = 3)
		GROUP BY k`
	plan, err := sql.Explain(db, "EXPLAIN "+src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan fact filter=((v < 15) AND (k = 3))") {
		t.Fatalf("trace-rewrite did not conjoin base filter and seed:\n%s", plan)
	}
	q, err := sql.Compile(db, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 1 {
		t.Fatalf("want 1 group, got %d", res.Out.N)
	}
	kc, nc := res.Out.Schema.MustCol("k"), res.Out.Schema.MustCol("n")
	// fact rows: k = i%5, v = i for i in 0..19 → k=3 rows are 3, 8, 13, 18;
	// v < 15 keeps 3, 8, 13.
	if res.Out.Int(kc, 0) != 3 || res.Out.Int(nc, 0) != 3 {
		t.Fatalf("got k=%d n=%d, want k=3 n=3", res.Out.Int(kc, 0), res.Out.Int(nc, 0))
	}
}

// TestTraceWordsStayIdentifiers pins that LINEAGE/BACKWARD/FORWARD/OF are
// contextual, not reserved: schemas using them as column or table names
// keep parsing.
func TestTraceWordsStayIdentifiers(t *testing.T) {
	for _, src := range []string{
		`SELECT forward, COUNT(*) AS c FROM roster GROUP BY forward`,
		`SELECT of, SUM(backward) AS s FROM lineage WHERE of < 3 GROUP BY of`,
		`SELECT k, COUNT(*) AS c FROM lineage GROUP BY k`,
	} {
		if _, err := sql.Parse(src); err != nil {
			t.Errorf("contextual word should parse as identifier in %q: %v", src, err)
		}
	}
}

// TestLineageParseErrors pins the trace grammar's error paths.
func TestLineageParseErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT k, COUNT(*) AS n FROM LINEAGE SIDEWAYS(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact) GROUP BY k`,
		`SELECT k, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k) GROUP BY k`,
		`SELECT k, COUNT(*) AS n FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF) GROUP BY k`,
		`SELECT k FROM LINEAGE BACKWARD(SELECT k, COUNT(*) AS c FROM fact GROUP BY k OF fact`,
	} {
		if _, err := sql.Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
