// Package sql is a front-end for a SQL subset covering the paper's queries
// and multi-block shapes beyond them: SELECT with aggregates, FROM with
// JOIN ... ON equi-joins and aggregate subqueries in FROM/JOIN position,
// WHERE conjunctions, GROUP BY, HAVING, ORDER BY, LIMIT, and EXPLAIN.
// Statements lower onto the logical plan layer (internal/plan) — the same IR
// the core.Query builder produces — and the optimizer's fusion rule decides
// which subtrees run on the fused SPJA executor. This is the architecture's
// "Parser + Optimizer" box (Figure 2).
package sql

import (
	"strings"
	"unicode"

	"smoke/internal/serr"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "AS": true,
	"JOIN": true, "ON": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "DISTINCT": true, "YEAR": true, "MONTH": true,
	"SQRT": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"ASC": true, "DESC": true, "EXPLAIN": true,
}

// LINEAGE, BACKWARD, FORWARD, and OF are contextual words, not reserved
// keywords: they introduce and structure the lineage-trace FROM source but
// lex as ordinary identifiers, so pre-existing schemas with columns or
// tables named "forward", "of", etc. keep parsing (the parser matches them
// case-insensitively only where the trace grammar expects them).

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens. Keywords are case-insensitive; identifiers keep
// their case.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) number() error {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !isFloat {
			isFloat = true
			l.pos++
		} else {
			break
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return serr.At(serr.Invalid, start, "sql: unterminated string literal")
}

func (l *lexer) symbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', '=', '<', '>', '*', '+', '-', '/', ':':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		l.pos++
		return nil
	default:
		return serr.At(serr.Invalid, start, "sql: unexpected character %q", c)
	}
}
