// Package physician generates data shaped like the Physician Compare
// National dataset used by the paper's data-profiling experiment (§6.5.2)
// and the HoloClean paper: practitioner records over which four functional
// dependencies mostly hold — NPI→PAC_ID, Zip→State, Zip→City, LBN1→CCN1 —
// except for an injected fraction of violations. FD-profiling cost is driven
// by distinct-value counts and violation counts, both of which the generator
// controls; the real 2.2M-row dataset is not redistributable.
package physician

import (
	"fmt"
	"math/rand"

	"smoke/internal/storage"
)

// FDs lists the four functional dependencies of Figure 15, in paper order.
func FDs() [][2]string {
	return [][2]string{
		{"NPI", "PAC_ID"},
		{"Zip", "State"},
		{"Zip", "City"},
		{"LBN1", "CCN1"},
	}
}

// Config scales the generator.
type Config struct {
	Rows          int
	Zips          int     // distinct zip codes
	Orgs          int     // distinct legal business names (LBN1)
	ViolationRate float64 // fraction of rows whose dependent values are corrupted
	Seed          int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{Rows: 500_000, Zips: 5000, Orgs: 2000, ViolationRate: 0.001, Seed: 1}
}

var states = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
	"HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
	"MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
	"NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
	"SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
}

// Schema returns the profiled table's schema. NPI is an integer (the paper
// notes Metanome's string-typed model slows integer attributes); the rest are
// strings, matching the paper's note that zip is a string.
func Schema() storage.Schema {
	return storage.Schema{
		{Name: "NPI", Type: storage.TInt},
		{Name: "PAC_ID", Type: storage.TInt},
		{Name: "Zip", Type: storage.TString},
		{Name: "State", Type: storage.TString},
		{Name: "City", Type: storage.TString},
		{Name: "LBN1", Type: storage.TString},
		{Name: "CCN1", Type: storage.TString},
	}
}

// Generate builds the table deterministically. Each physician (NPI) may
// appear on multiple rows (practice locations), all agreeing on PAC_ID
// except injected violations; zips determine state/city except injected
// violations; organizations determine CCN1 except injected violations.
func Generate(cfg Config) *storage.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := storage.NewRelation("physician", Schema(), cfg.Rows)

	zipState := make([]string, cfg.Zips)
	zipCity := make([]string, cfg.Zips)
	for z := 0; z < cfg.Zips; z++ {
		zipState[z] = states[z*len(states)/cfg.Zips]
		zipCity[z] = fmt.Sprintf("CITY_%04d", z/3) // a few zips per city
	}
	orgCCN := make([]string, cfg.Orgs)
	for o := 0; o < cfg.Orgs; o++ {
		orgCCN[o] = fmt.Sprintf("CCN%06d", o*7+13)
	}

	nPhysicians := cfg.Rows / 3 // ~3 locations per physician
	if nPhysicians < 1 {
		nPhysicians = 1
	}
	npiOf := func(p int) int64 { return int64(1000000000 + p) }
	pacOf := func(p int) int64 { return int64(42000000 + p*3) }

	npi := rel.Cols[0].Ints
	pac := rel.Cols[1].Ints
	zip := rel.Cols[2].Strs
	st := rel.Cols[3].Strs
	city := rel.Cols[4].Strs
	lbn := rel.Cols[5].Strs
	ccn := rel.Cols[6].Strs

	for i := 0; i < cfg.Rows; i++ {
		p := rng.Intn(nPhysicians)
		z := rng.Intn(cfg.Zips)
		o := rng.Intn(cfg.Orgs)
		npi[i] = npiOf(p)
		pac[i] = pacOf(p)
		zip[i] = fmt.Sprintf("%05d", 10000+z)
		st[i] = zipState[z]
		city[i] = zipCity[z]
		lbn[i] = fmt.Sprintf("ORG_%05d", o)
		ccn[i] = orgCCN[o]

		// Injected violations: corrupt the dependent attribute of one FD.
		if rng.Float64() < cfg.ViolationRate {
			switch rng.Intn(4) {
			case 0:
				pac[i] = pacOf(p) + 1 // NPI→PAC_ID violated
			case 1:
				st[i] = states[rng.Intn(len(states))] // Zip→State (may coincide)
			case 2:
				city[i] = fmt.Sprintf("CITY_%04d", rng.Intn(cfg.Zips/3+1)) // Zip→City
			case 3:
				ccn[i] = fmt.Sprintf("CCN%06d", rng.Intn(1000000)) // LBN1→CCN1
			}
		}
	}
	return rel
}
