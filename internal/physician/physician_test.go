package physician

import (
	"reflect"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{Rows: 10000, Zips: 200, Orgs: 100, ViolationRate: 0.001, Seed: 1}
	rel := Generate(cfg)
	if rel.N != cfg.Rows {
		t.Fatalf("N = %d", rel.N)
	}
	for _, f := range []string{"NPI", "PAC_ID", "Zip", "State", "City", "LBN1", "CCN1"} {
		if rel.Schema.Col(f) < 0 {
			t.Fatalf("column %q missing", f)
		}
	}
}

func TestFDsMostlyHold(t *testing.T) {
	cfg := Config{Rows: 20000, Zips: 200, Orgs: 100, ViolationRate: 0.001, Seed: 3}
	rel := Generate(cfg)
	// Count rows that disagree with the majority mapping for Zip→State.
	zc, sc := rel.Schema.MustCol("Zip"), rel.Schema.MustCol("State")
	first := map[string]string{}
	disagree := 0
	for i := 0; i < rel.N; i++ {
		z := rel.Str(zc, i)
		s := rel.Str(sc, i)
		if f, ok := first[z]; ok {
			if f != s {
				disagree++
			}
		} else {
			first[z] = s
		}
	}
	if disagree == 0 {
		t.Error("no Zip→State violations injected")
	}
	if disagree > rel.N/100 {
		t.Errorf("too many violations: %d of %d", disagree, rel.N)
	}
}

func TestCleanGeneration(t *testing.T) {
	rel := Generate(Config{Rows: 5000, Zips: 100, Orgs: 50, ViolationRate: 0, Seed: 4})
	// NPI→PAC_ID must hold exactly.
	nc, pc := rel.Schema.MustCol("NPI"), rel.Schema.MustCol("PAC_ID")
	seen := map[int64]int64{}
	for i := 0; i < rel.N; i++ {
		n, p := rel.Int(nc, i), rel.Int(pc, i)
		if prev, ok := seen[n]; ok && prev != p {
			t.Fatal("clean data violates NPI→PAC_ID")
		}
		seen[n] = p
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Rows: 1000, Zips: 50, Orgs: 20, ViolationRate: 0.01, Seed: 9})
	b := Generate(Config{Rows: 1000, Zips: 50, Orgs: 20, ViolationRate: 0.01, Seed: 9})
	if !reflect.DeepEqual(a.Cols[2].Strs, b.Cols[2].Strs) {
		t.Fatal("same seed differs")
	}
	if FDs()[0] != [2]string{"NPI", "PAC_ID"} {
		t.Fatal("FD order changed")
	}
	if DefaultConfig().Rows <= 0 {
		t.Fatal("default config empty")
	}
}
