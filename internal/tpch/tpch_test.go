package tpch

import (
	"testing"

	"smoke/internal/dates"
)

func smallDB(t *testing.T) *DB {
	t.Helper()
	return Generate(0.002, 42) // ~3000 orders, ~12000 lineitems
}

func TestGenerateCardinalities(t *testing.T) {
	db := smallDB(t)
	if db.Nation.N != 25 {
		t.Errorf("nation N = %d", db.Nation.N)
	}
	if db.Customer.N < 100 {
		t.Errorf("customer N = %d", db.Customer.N)
	}
	if db.Orders.N < 1000 {
		t.Errorf("orders N = %d", db.Orders.N)
	}
	if db.Lineitem.N < db.Orders.N {
		t.Errorf("lineitem N = %d should exceed orders N = %d", db.Lineitem.N, db.Orders.N)
	}
	avgLines := float64(db.Lineitem.N) / float64(db.Orders.N)
	if avgLines < 3.0 || avgLines > 5.0 {
		t.Errorf("avg lines per order = %.2f, want ≈ 4", avgLines)
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	db := smallDB(t)
	// Every l_orderkey references an existing order (keys are 1..N).
	oc := db.Lineitem.Schema.MustCol("l_orderkey")
	for i := 0; i < db.Lineitem.N; i++ {
		k := db.Lineitem.Int(oc, i)
		if k < 1 || k > int64(db.Orders.N) {
			t.Fatalf("lineitem %d references order %d out of range", i, k)
		}
	}
	cc := db.Orders.Schema.MustCol("o_custkey")
	for i := 0; i < db.Orders.N; i++ {
		k := db.Orders.Int(cc, i)
		if k < 1 || k > int64(db.Customer.N) {
			t.Fatalf("order %d references customer %d out of range", i, k)
		}
	}
	nc := db.Customer.Schema.MustCol("c_nationkey")
	for i := 0; i < db.Customer.N; i++ {
		k := db.Customer.Int(nc, i)
		if k < 0 || k >= 25 {
			t.Fatalf("customer %d references nation %d out of range", i, k)
		}
	}
}

func TestPrimaryKeysUnique(t *testing.T) {
	db := smallDB(t)
	seen := map[int64]bool{}
	kc := db.Orders.Schema.MustCol("o_orderkey")
	for i := 0; i < db.Orders.N; i++ {
		k := db.Orders.Int(kc, i)
		if seen[k] {
			t.Fatalf("duplicate o_orderkey %d", k)
		}
		seen[k] = true
	}
}

func TestDateConsistency(t *testing.T) {
	db := smallDB(t)
	od := db.Orders.Schema.MustCol("o_orderdate")
	sd := db.Lineitem.Schema.MustCol("l_shipdate")
	rd := db.Lineitem.Schema.MustCol("l_receiptdate")
	ok := db.Lineitem.Schema.MustCol("l_orderkey")
	lo := dates.FromCivil(1992, 1, 1)
	hi := dates.FromCivil(1999, 6, 1)
	for i := 0; i < db.Lineitem.N; i++ {
		orderRid := db.Lineitem.Int(ok, i) - 1
		odate := db.Orders.Int(od, int(orderRid))
		ship := db.Lineitem.Int(sd, i)
		recv := db.Lineitem.Int(rd, i)
		if ship <= odate {
			t.Fatalf("lineitem %d shipped before its order", i)
		}
		if recv <= ship {
			t.Fatalf("lineitem %d received before shipped", i)
		}
		if ship < lo || ship > hi {
			t.Fatalf("lineitem %d shipdate out of range", i)
		}
	}
}

func TestReturnFlagRule(t *testing.T) {
	db := smallDB(t)
	rf := db.Lineitem.Schema.MustCol("l_returnflag")
	rd := db.Lineitem.Schema.MustCol("l_receiptdate")
	cutoff := dates.FromCivil(1995, 6, 17)
	sawR := false
	for i := 0; i < db.Lineitem.N; i++ {
		flag := db.Lineitem.Str(rf, i)
		if db.Lineitem.Int(rd, i) <= cutoff {
			if flag != "R" && flag != "A" {
				t.Fatalf("early lineitem %d has flag %q", i, flag)
			}
			if flag == "R" {
				sawR = true
			}
		} else if flag != "N" {
			t.Fatalf("late lineitem %d has flag %q", i, flag)
		}
	}
	if !sawR {
		t.Fatal("no R lineitems generated; Q10's filter would be empty")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	if a.Lineitem.N != b.Lineitem.N {
		t.Fatal("same seed produced different sizes")
	}
	pc := a.Lineitem.Schema.MustCol("l_extendedprice")
	for i := 0; i < a.Lineitem.N; i += 97 {
		if a.Lineitem.Float(pc, i) != b.Lineitem.Float(pc, i) {
			t.Fatal("same seed produced different values")
		}
	}
}

func TestCatalogMetadata(t *testing.T) {
	db := smallDB(t)
	isPKFK, pkLeft := db.Catalog.IsPKFK("orders", "o_orderkey", "lineitem", "l_orderkey")
	if !isPKFK || !pkLeft {
		t.Fatal("orders-lineitem pk-fk not declared")
	}
	if _, err := db.Catalog.Relation("lineitem"); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySpecsWellFormed(t *testing.T) {
	db := smallDB(t)
	for name, spec := range db.Queries() {
		if len(spec.Tables) == 0 || len(spec.Keys) == 0 || len(spec.Aggs) == 0 {
			t.Errorf("%s: malformed spec", name)
		}
		if len(spec.Joins) != len(spec.Tables)-1 {
			t.Errorf("%s: %d joins for %d tables", name, len(spec.Joins), len(spec.Tables))
		}
	}
}
