package tpch

import (
	"smoke/internal/dates"
	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/ops"
)

// revenue is SUM(l_extendedprice * (1 - l_discount)).
func revenue() expr.Expr {
	return expr.MulE(expr.C("l_extendedprice"), expr.SubE(expr.F(1), expr.C("l_discount")))
}

// Q1 is the pricing summary report (as the paper states it: a single
// aggregation over lineitem with a high-selectivity shipdate filter; the
// hash-based engine omits ORDER BY).
//
//	SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
//	       sum(l_extendedprice*(1-l_discount)),
//	       sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//	FROM lineitem WHERE l_shipdate < '1998-12-01'
//	GROUP BY l_returnflag, l_linestatus
func (db *DB) Q1() exec.Spec {
	return exec.Spec{
		Tables: []exec.TableRef{{
			Rel:    db.Lineitem,
			Filter: expr.LtE(expr.C("l_shipdate"), expr.I(dates.FromCivil(1998, 12, 1))),
		}},
		Keys: []exec.KeyRef{{Table: 0, Col: "l_returnflag"}, {Table: 0, Col: "l_linestatus"}},
		Aggs: []exec.AggRef{
			{Fn: ops.Sum, Table: 0, Arg: expr.C("l_quantity"), Name: "sum_qty"},
			{Fn: ops.Sum, Table: 0, Arg: expr.C("l_extendedprice"), Name: "sum_base_price"},
			{Fn: ops.Sum, Table: 0, Arg: revenue(), Name: "sum_disc_price"},
			{Fn: ops.Sum, Table: 0, Arg: expr.MulE(revenue(), expr.AddE(expr.F(1), expr.C("l_tax"))), Name: "sum_charge"},
			{Fn: ops.Avg, Table: 0, Arg: expr.C("l_quantity"), Name: "avg_qty"},
			{Fn: ops.Avg, Table: 0, Arg: expr.C("l_extendedprice"), Name: "avg_price"},
			{Fn: ops.Avg, Table: 0, Arg: expr.C("l_discount"), Name: "avg_disc"},
			{Fn: ops.Count, Table: 0, Name: "count_order"},
		},
	}
}

// Q3 is the shipping priority query: customer ⋈ orders ⋈ lineitem, left-deep
// with pk-fk joins, grouped by order.
func (db *DB) Q3() exec.Spec {
	cutoff := expr.I(dates.FromCivil(1995, 3, 15))
	return exec.Spec{
		Tables: []exec.TableRef{
			{Rel: db.Customer, Filter: expr.EqE(expr.C("c_mktsegment"), expr.S("BUILDING"))},
			{Rel: db.Orders, Filter: expr.LtE(expr.C("o_orderdate"), cutoff)},
			{Rel: db.Lineitem, Filter: expr.GtE(expr.C("l_shipdate"), cutoff)},
		},
		Joins: []exec.JoinEdge{
			{LeftTable: 0, LeftCol: "c_custkey", RightCol: "o_custkey"},
			{LeftTable: 1, LeftCol: "o_orderkey", RightCol: "l_orderkey"},
		},
		Keys: []exec.KeyRef{
			{Table: 1, Col: "o_orderkey"},
			{Table: 1, Col: "o_orderdate"},
			{Table: 1, Col: "o_shippriority"},
		},
		Aggs: []exec.AggRef{{Fn: ops.Sum, Table: 2, Arg: revenue(), Name: "revenue"}},
	}
}

// Q10 is the returned-item reporting query: nation ⋈ customer ⋈ orders ⋈
// lineitem with the returnflag filter on lineitem, grouped by customer.
func (db *DB) Q10() exec.Spec {
	lo := expr.I(dates.FromCivil(1993, 10, 1))
	hi := expr.I(dates.FromCivil(1994, 1, 1))
	return exec.Spec{
		Tables: []exec.TableRef{
			{Rel: db.Nation},
			{Rel: db.Customer},
			{Rel: db.Orders, Filter: expr.AndE(
				expr.GeE(expr.C("o_orderdate"), lo),
				expr.LtE(expr.C("o_orderdate"), hi),
			)},
			{Rel: db.Lineitem, Filter: expr.EqE(expr.C("l_returnflag"), expr.S("R"))},
		},
		Joins: []exec.JoinEdge{
			{LeftTable: 0, LeftCol: "n_nationkey", RightCol: "c_nationkey"},
			{LeftTable: 1, LeftCol: "c_custkey", RightCol: "o_custkey"},
			{LeftTable: 2, LeftCol: "o_orderkey", RightCol: "l_orderkey"},
		},
		Keys: []exec.KeyRef{
			{Table: 1, Col: "c_custkey"},
			{Table: 1, Col: "c_name"},
			{Table: 1, Col: "c_acctbal"},
			{Table: 0, Col: "n_name"},
		},
		Aggs: []exec.AggRef{{Fn: ops.Sum, Table: 3, Arg: revenue(), Name: "revenue"}},
	}
}

// Q12 is the shipping-modes query: orders ⋈ lineitem grouped by l_shipmode,
// with the CASE WHEN priority counters expressed as filtered counts.
func (db *DB) Q12() exec.Spec {
	lo := expr.I(dates.FromCivil(1994, 1, 1))
	hi := expr.I(dates.FromCivil(1995, 1, 1))
	urgent := expr.InStr{E: expr.C("o_orderpriority"), Set: []string{"1-URGENT", "2-HIGH"}}
	return exec.Spec{
		Tables: []exec.TableRef{
			{Rel: db.Orders},
			{Rel: db.Lineitem, Filter: expr.AndE(
				expr.InStr{E: expr.C("l_shipmode"), Set: []string{"MAIL", "SHIP"}},
				expr.LtE(expr.C("l_commitdate"), expr.C("l_receiptdate")),
				expr.LtE(expr.C("l_shipdate"), expr.C("l_commitdate")),
				expr.GeE(expr.C("l_receiptdate"), lo),
				expr.LtE(expr.C("l_receiptdate"), hi),
			)},
		},
		Joins: []exec.JoinEdge{{LeftTable: 0, LeftCol: "o_orderkey", RightCol: "l_orderkey"}},
		Keys:  []exec.KeyRef{{Table: 1, Col: "l_shipmode"}},
		Aggs: []exec.AggRef{
			{Fn: ops.Count, Table: 0, Filter: urgent, Name: "high_line_count"},
			{Fn: ops.Count, Table: 0, Filter: expr.Not{E: urgent}, Name: "low_line_count"},
		},
	}
}

// Queries returns the four evaluation queries keyed by their paper names.
func (db *DB) Queries() map[string]exec.Spec {
	return map[string]exec.Spec{
		"Q1":  db.Q1(),
		"Q3":  db.Q3(),
		"Q10": db.Q10(),
		"Q12": db.Q12(),
	}
}
