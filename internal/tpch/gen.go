// Package tpch generates TPC-H-shaped data in-process and defines the four
// benchmark queries (Q1, Q3, Q10, Q12) the paper evaluates multi-operator
// lineage capture on (§6.2), plus the Q1a/Q1b/Q1c drill-down variants of the
// workload-aware experiments (§6.4, Appendix C).
//
// This is a dbgen substitute (see DESIGN.md): rows, key structure (pk-fk
// integrity), selectivities of the four queries' predicates, and group
// cardinalities follow the TPC-H specification closely enough to preserve
// what stresses lineage capture; text columns draw from the dbgen
// vocabularies.
package tpch

import (
	"math/rand"

	"smoke/internal/dates"
	"smoke/internal/storage"
)

// Scale-factor-1 base cardinalities.
const (
	customersPerSF = 150000
	ordersPerSF    = 1500000
)

// Vocabularies (dbgen value sets).
var (
	ShipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	ShipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	Priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	Segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	NationNames   = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
)

// DB bundles the generated relations and their key metadata.
type DB struct {
	Nation   *storage.Relation
	Customer *storage.Relation
	Orders   *storage.Relation
	Lineitem *storage.Relation
	Catalog  *storage.Catalog
}

// Generate builds a TPC-H-like database at the given scale factor,
// deterministically for a seed. sf = 1.0 yields ~6M lineitem rows; the
// benchmarks default to smaller factors.
func Generate(sf float64, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))

	nCust := int(float64(customersPerSF) * sf)
	if nCust < 100 {
		nCust = 100
	}
	nOrders := int(float64(ordersPerSF) * sf)
	if nOrders < 1000 {
		nOrders = 1000
	}

	nation := storage.NewRelation("nation", storage.Schema{
		{Name: "n_nationkey", Type: storage.TInt},
		{Name: "n_name", Type: storage.TString},
		{Name: "n_regionkey", Type: storage.TInt},
	}, len(NationNames))
	for i, name := range NationNames {
		nation.Cols[0].Ints[i] = int64(i)
		nation.Cols[1].Strs[i] = name
		nation.Cols[2].Ints[i] = int64(i % 5)
	}

	customer := storage.NewRelation("customer", storage.Schema{
		{Name: "c_custkey", Type: storage.TInt},
		{Name: "c_name", Type: storage.TString},
		{Name: "c_nationkey", Type: storage.TInt},
		{Name: "c_acctbal", Type: storage.TFloat},
		{Name: "c_mktsegment", Type: storage.TString},
	}, nCust)
	for i := 0; i < nCust; i++ {
		customer.Cols[0].Ints[i] = int64(i + 1)
		customer.Cols[1].Strs[i] = "Customer#" + pad9(i+1)
		customer.Cols[2].Ints[i] = int64(rng.Intn(len(NationNames)))
		customer.Cols[3].Floats[i] = -999.99 + rng.Float64()*(9999.99+999.99)
		customer.Cols[4].Strs[i] = Segments[rng.Intn(len(Segments))]
	}

	startDate := dates.FromCivil(1992, 1, 1)
	endDate := dates.FromCivil(1998, 8, 2)
	dateRange := int(endDate - startDate)

	orders := storage.NewRelation("orders", storage.Schema{
		{Name: "o_orderkey", Type: storage.TInt},
		{Name: "o_custkey", Type: storage.TInt},
		{Name: "o_orderstatus", Type: storage.TString},
		{Name: "o_totalprice", Type: storage.TFloat},
		{Name: "o_orderdate", Type: storage.TInt},
		{Name: "o_orderpriority", Type: storage.TString},
		{Name: "o_shippriority", Type: storage.TInt},
	}, nOrders)

	// First pass over orders decides line counts so lineitem can be
	// allocated exactly.
	lineCounts := make([]int8, nOrders)
	nLines := 0
	for i := 0; i < nOrders; i++ {
		lc := 1 + rng.Intn(7)
		lineCounts[i] = int8(lc)
		nLines += lc
	}

	lineitem := storage.NewRelation("lineitem", storage.Schema{
		{Name: "l_orderkey", Type: storage.TInt},
		{Name: "l_linenumber", Type: storage.TInt},
		{Name: "l_quantity", Type: storage.TFloat},
		{Name: "l_extendedprice", Type: storage.TFloat},
		{Name: "l_discount", Type: storage.TFloat},
		{Name: "l_tax", Type: storage.TFloat},
		{Name: "l_returnflag", Type: storage.TString},
		{Name: "l_linestatus", Type: storage.TString},
		{Name: "l_shipdate", Type: storage.TInt},
		{Name: "l_commitdate", Type: storage.TInt},
		{Name: "l_receiptdate", Type: storage.TInt},
		{Name: "l_shipinstruct", Type: storage.TString},
		{Name: "l_shipmode", Type: storage.TString},
		// Derived columns materialized at load time: the workload-aware
		// experiments (§6.4) group by EXTRACT(year/month FROM l_shipdate)
		// and by l_tax; grouping and cube dimensions take columns, and the
		// paper's data-skipping discussion notes continuous attributes are
		// discretized anyway.
		{Name: "l_shipym", Type: storage.TInt}, // year*100 + month of l_shipdate
		{Name: "l_taxpct", Type: storage.TInt}, // l_tax in percent (0..8)
	}, nLines)

	cutoff := dates.FromCivil(1995, 6, 17)
	li := 0
	for i := 0; i < nOrders; i++ {
		orderdate := startDate + int64(rng.Intn(dateRange))
		orders.Cols[0].Ints[i] = int64(i + 1)
		orders.Cols[1].Ints[i] = int64(1 + rng.Intn(nCust))
		orders.Cols[4].Ints[i] = orderdate
		orders.Cols[5].Strs[i] = Priorities[rng.Intn(len(Priorities))]
		orders.Cols[6].Ints[i] = 0

		total := 0.0
		allF, allO := true, true
		for ln := 0; ln < int(lineCounts[i]); ln++ {
			qty := float64(1 + rng.Intn(50))
			price := qty * (900.0 + rng.Float64()*99100.0) / 10.0
			discount := float64(rng.Intn(11)) / 100.0
			tax := float64(rng.Intn(9)) / 100.0
			shipdate := orderdate + int64(1+rng.Intn(121))
			commitdate := orderdate + int64(30+rng.Intn(61))
			receiptdate := shipdate + int64(1+rng.Intn(30))

			lineitem.Cols[0].Ints[li] = int64(i + 1)
			lineitem.Cols[1].Ints[li] = int64(ln + 1)
			lineitem.Cols[2].Floats[li] = qty
			lineitem.Cols[3].Floats[li] = price
			lineitem.Cols[4].Floats[li] = discount
			lineitem.Cols[5].Floats[li] = tax
			if receiptdate <= cutoff {
				if rng.Intn(2) == 0 {
					lineitem.Cols[6].Strs[li] = "R"
				} else {
					lineitem.Cols[6].Strs[li] = "A"
				}
			} else {
				lineitem.Cols[6].Strs[li] = "N"
			}
			if shipdate > cutoff {
				lineitem.Cols[7].Strs[li] = "O"
				allF = false
			} else {
				lineitem.Cols[7].Strs[li] = "F"
				allO = false
			}
			lineitem.Cols[8].Ints[li] = shipdate
			lineitem.Cols[9].Ints[li] = commitdate
			lineitem.Cols[10].Ints[li] = receiptdate
			lineitem.Cols[11].Strs[li] = ShipInstructs[rng.Intn(len(ShipInstructs))]
			lineitem.Cols[12].Strs[li] = ShipModes[rng.Intn(len(ShipModes))]
			lineitem.Cols[13].Ints[li] = dates.YearMonth(shipdate)
			lineitem.Cols[14].Ints[li] = int64(tax*100 + 0.5)
			total += price
			li++
		}
		switch {
		case allF:
			orders.Cols[2].Strs[i] = "F"
		case allO:
			orders.Cols[2].Strs[i] = "O"
		default:
			orders.Cols[2].Strs[i] = "P"
		}
		orders.Cols[3].Floats[i] = total
	}

	cat := storage.NewCatalog()
	cat.Register(nation)
	cat.Register(customer)
	cat.Register(orders)
	cat.Register(lineitem)
	cat.SetPrimaryKey("nation", "n_nationkey")
	cat.SetPrimaryKey("customer", "c_custkey")
	cat.SetPrimaryKey("orders", "o_orderkey")
	cat.AddForeignKey(storage.ForeignKey{ChildTable: "customer", ChildColumn: "c_nationkey", ParentTable: "nation", ParentColumn: "n_nationkey"})
	cat.AddForeignKey(storage.ForeignKey{ChildTable: "orders", ChildColumn: "o_custkey", ParentTable: "customer", ParentColumn: "c_custkey"})
	cat.AddForeignKey(storage.ForeignKey{ChildTable: "lineitem", ChildColumn: "l_orderkey", ParentTable: "orders", ParentColumn: "o_orderkey"})

	return &DB{Nation: nation, Customer: customer, Orders: orders, Lineitem: lineitem, Catalog: cat}
}

func pad9(n int) string {
	s := ""
	for v := n; v > 0; v /= 10 {
		s = string(rune('0'+v%10)) + s
	}
	for len(s) < 9 {
		s = "0" + s
	}
	return s
}
