// Package serr defines the engine's structured error type. Every user-facing
// error path in the engine (core query building, SQL parsing/lowering,
// catalog lookups) returns an *E carrying a machine-readable Kind — and, for
// SQL errors, the byte offset in the statement where the problem was
// detected — so callers that sit on a protocol boundary (internal/server)
// can map failures to deterministic status codes instead of pattern-matching
// message strings. Plain errors (I/O, bugs) stay plain and classify as
// Internal.
package serr

import (
	"errors"
	"fmt"
)

// Kind classifies an error for protocol mapping. The zero value is Internal
// so an unclassified error never masquerades as a client mistake.
type Kind int

const (
	// Internal is an engine-side failure (HTTP 5xx).
	Internal Kind = iota
	// Invalid is a malformed request: bad SQL, a query-shape error, an
	// unknown column, bad arguments (HTTP 400).
	Invalid
	// NotFound names a table, session, or result that does not exist
	// (HTTP 404).
	NotFound
	// Unsupported is a recognized but unsupported operation (HTTP 422).
	Unsupported
	// Gone names a resource that existed but was evicted or expired —
	// distinct from NotFound so interactive clients know to re-run their
	// base query (HTTP 410).
	Gone
	// Busy means the admission gate rejected the request; retry later
	// (HTTP 429).
	Busy
	// Unavailable means a backend the request depends on did not answer —
	// a shard timed out or failed mid-scatter, so the gathered result would
	// be partial. Retrying may succeed once the shard recovers (HTTP 503).
	Unavailable
)

// String names the kind (diagnostics and JSON error bodies).
func (k Kind) String() string {
	switch k {
	case Invalid:
		return "invalid"
	case NotFound:
		return "not_found"
	case Unsupported:
		return "unsupported"
	case Gone:
		return "gone"
	case Busy:
		return "busy"
	case Unavailable:
		return "unavailable"
	}
	return "internal"
}

// ParseKind is the inverse of String: it maps a wire kind name back to the
// Kind. Unknown names classify as Internal, mirroring KindOf's treatment of
// unclassified errors — a proxy tier (the shard coordinator) uses this to
// rebuild a structured error from a JSON error body without losing the
// status mapping.
func ParseKind(s string) Kind {
	switch s {
	case "invalid":
		return Invalid
	case "not_found":
		return NotFound
	case "unsupported":
		return Unsupported
	case "gone":
		return Gone
	case "busy":
		return Busy
	case "unavailable":
		return Unavailable
	}
	return Internal
}

// E is a structured error. Pos, when >= 0, is a byte offset into the source
// text the error refers to (SQL statements); -1 means no position.
type E struct {
	Kind Kind
	Pos  int
	Msg  string
	err  error // wrapped cause, if any
}

// Error renders the message; the position (when present) is appended so the
// string form stays self-contained for log lines and plain-error callers.
func (e *E) Error() string {
	if e.Pos >= 0 {
		return fmt.Sprintf("%s (at offset %d)", e.Msg, e.Pos)
	}
	return e.Msg
}

// Unwrap exposes the wrapped cause to errors.Is/As chains.
func (e *E) Unwrap() error { return e.err }

// New returns a structured error with no position. %w operands wrap as with
// fmt.Errorf, so errors.Is/As see through an *E.
func New(kind Kind, format string, args ...any) *E {
	err := fmt.Errorf(format, args...)
	return &E{Kind: kind, Pos: -1, Msg: err.Error(), err: errors.Unwrap(err)}
}

// At returns a structured error anchored at a byte offset in the source text.
func At(kind Kind, pos int, format string, args ...any) *E {
	e := New(kind, format, args...)
	e.Pos = pos
	return e
}

// KindOf classifies any error: the Kind of the outermost *E in its chain, or
// Internal for plain errors and nil.
func KindOf(err error) Kind {
	var e *E
	if errors.As(err, &e) {
		return e.Kind
	}
	return Internal
}

// PosOf returns the byte offset carried by the outermost *E in err's chain,
// or -1 when there is none.
func PosOf(err error) int {
	var e *E
	if errors.As(err, &e) {
		return e.Pos
	}
	return -1
}
