package serr

import (
	"errors"
	"fmt"
	"testing"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, Internal},
		{errors.New("plain"), Internal},
		{New(NotFound, "missing %q", "t"), NotFound},
		{fmt.Errorf("wrapping: %w", New(Invalid, "bad")), Invalid},
		{At(Invalid, 7, "bad token"), Invalid},
	}
	for _, c := range cases {
		if got := KindOf(c.err); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestPosition(t *testing.T) {
	e := At(Invalid, 12, "unexpected %q", ")")
	if e.Pos != 12 || PosOf(e) != 12 {
		t.Fatalf("Pos = %d / PosOf = %d, want 12", e.Pos, PosOf(e))
	}
	if got, want := e.Error(), `unexpected ")" (at offset 12)`; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	if PosOf(New(Invalid, "no pos")) != -1 || PosOf(errors.New("plain")) != -1 {
		t.Fatal("errors without positions must report -1")
	}
}

func TestUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	e := New(Internal, "context: %w", cause)
	if !errors.Is(e, cause) {
		t.Fatal("wrapped cause lost")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Internal: "internal", Invalid: "invalid", NotFound: "not_found",
		Unsupported: "unsupported", Gone: "gone", Busy: "busy",
		Unavailable: "unavailable",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
		if got := ParseKind(want); got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", want, got, k)
		}
	}
	if got := ParseKind("no-such-kind"); got != Internal {
		t.Errorf("ParseKind of unknown name = %v, want Internal", got)
	}
}
