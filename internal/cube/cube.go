// Package cube implements the group-by push-down optimization (§4.2): when a
// future lineage-consuming query is known to re-aggregate a base query's
// backward lineage under additional grouping attributes, the capture phase
// piggy-backs a partial data cube on the base query's existing scan. Each
// cube cell holds the intermediate aggregation state for one (output group,
// drill-down dimension values) combination, so the consuming query reduces to
// fetching materialized aggregates (the ≈0ms line of Figure 11).
//
// In contrast to offline cube construction (imMens, NanoCubes, hashedcubes),
// which needs separate scans of the database, this construction overlaps with
// base query execution — it is also what the crossfilter comparison uses to
// build its partial cube (§6.5.1).
package cube

import (
	"encoding/binary"
	"fmt"
	"math"

	"smoke/internal/expr"
	"smoke/internal/hashtab"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// AggDef is one aggregate materialized per cube cell. Supported functions are
// the algebraic/distributive ones (§4.2): Count, Sum, Avg, Min, Max.
type AggDef struct {
	Fn   ops.AggFn
	Arg  expr.Expr
	Name string
}

// Spec declares the cube: drill-down dimensions (columns of the captured
// relation) and per-cell aggregates.
type Spec struct {
	Dims []string
	Aggs []AggDef
}

type dimEnc struct {
	name string
	typ  storage.Type
	ints []int64
	strs []string
}

type cell struct {
	group int32
	dims  []int64 // int dims: value; string dims: dictionary code
	count int64
	sums  []float64
	mins  []float64
	maxs  []float64
	cnts  []int64
}

// Builder accumulates cube cells during lineage capture. The capture loop
// calls Observe once per (group, input rid) pair.
type Builder struct {
	rel   *storage.Relation
	spec  Spec
	dims  []dimEnc
	nums  []expr.NumFn
	dict  map[string]int64
	vals  []string
	cells map[string]*cell
	buf   []byte
	order []*cell

	// Fast path for a single non-negative int dimension (drill-down
	// attributes are typically small discretized ints): the (group, value)
	// pair packs into one int64 key, avoiding byte encoding per row.
	fastInts []int64
	fastHT   *hashtab.Map
}

// NewBuilder compiles the spec against the relation whose rids will be
// observed.
func NewBuilder(rel *storage.Relation, spec Spec, params expr.Params) (*Builder, error) {
	b := &Builder{rel: rel, spec: spec, dict: map[string]int64{}, cells: map[string]*cell{}}
	if len(spec.Dims) == 0 {
		return nil, fmt.Errorf("cube: at least one dimension required")
	}
	if len(spec.Dims) > 8 {
		return nil, fmt.Errorf("cube: at most 8 dimensions supported, got %d", len(spec.Dims))
	}
	for _, d := range spec.Dims {
		c := rel.Schema.Col(d)
		if c < 0 {
			return nil, fmt.Errorf("cube: unknown dimension %q", d)
		}
		de := dimEnc{name: d, typ: rel.Schema[c].Type}
		switch de.typ {
		case storage.TInt:
			de.ints = rel.Cols[c].Ints
		case storage.TString:
			de.strs = rel.Cols[c].Strs
		default:
			return nil, fmt.Errorf("cube: dimension %q must be INT or STRING (continuous attributes must be discretized first)", d)
		}
		b.dims = append(b.dims, de)
	}
	for _, a := range spec.Aggs {
		switch a.Fn {
		case ops.Count:
			b.nums = append(b.nums, nil)
		case ops.Sum, ops.Avg, ops.Min, ops.Max:
			if a.Arg == nil {
				return nil, fmt.Errorf("cube: aggregate %q needs an argument", a.Name)
			}
			f, err := expr.CompileNum(a.Arg, rel, params)
			if err != nil {
				return nil, err
			}
			b.nums = append(b.nums, f)
		default:
			return nil, fmt.Errorf("cube: %s is not algebraic/distributive", a.Fn)
		}
	}
	if len(b.dims) == 1 && b.dims[0].typ == storage.TInt {
		b.fastInts = b.dims[0].ints
		b.fastHT = hashtab.New(64)
	}
	return b, nil
}

func (b *Builder) code(s string) int64 {
	if c, ok := b.dict[s]; ok {
		return c
	}
	c := int64(len(b.vals))
	b.dict[s] = c
	b.vals = append(b.vals, s)
	return c
}

// Observe folds one (group, rid) pair into the cube.
func (b *Builder) Observe(group int32, rid int32) {
	if b.fastInts != nil {
		v := b.fastInts[rid]
		if v >= 0 && v < 1<<31 {
			key := int64(group)<<31 | v
			idx, inserted := b.fastHT.GetOrPut(key, int32(len(b.order)))
			var c *cell
			if inserted {
				c = b.newCell(group, [8]int64{v}, 1)
			} else {
				c = b.order[idx]
			}
			b.updateCell(c, rid)
			return
		}
	}
	b.buf = b.buf[:0]
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(group))
	b.buf = append(b.buf, tmp[:4]...)
	var dimVals [8]int64
	for i := range b.dims {
		d := &b.dims[i]
		var v int64
		if d.typ == storage.TInt {
			v = d.ints[rid]
		} else {
			v = b.code(d.strs[rid])
		}
		dimVals[i] = v
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		b.buf = append(b.buf, tmp[:]...)
	}
	c, ok := b.cells[string(b.buf)]
	if !ok {
		c = b.newCell(group, dimVals, len(b.dims))
		b.cells[string(b.buf)] = c
	}
	b.updateCell(c, rid)
}

func (b *Builder) newCell(group int32, dimVals [8]int64, nDims int) *cell {
	c := &cell{group: group, dims: append([]int64(nil), dimVals[:nDims]...)}
	for _, a := range b.spec.Aggs {
		switch a.Fn {
		case ops.Sum, ops.Avg:
			c.sums = append(c.sums, 0)
			c.cnts = append(c.cnts, 0)
		case ops.Min:
			c.mins = append(c.mins, math.Inf(1))
		case ops.Max:
			c.maxs = append(c.maxs, math.Inf(-1))
		case ops.Count:
			c.cnts = append(c.cnts, 0)
		}
	}
	b.order = append(b.order, c)
	return c
}

func (b *Builder) updateCell(c *cell, rid int32) {
	c.count++
	si, mi, xi, ci := 0, 0, 0, 0
	for i, a := range b.spec.Aggs {
		switch a.Fn {
		case ops.Count:
			c.cnts[ci]++
			ci++
		case ops.Sum, ops.Avg:
			c.sums[si] += b.nums[i](rid)
			c.cnts[ci]++
			si++
			ci++
		case ops.Min:
			if v := b.nums[i](rid); v < c.mins[mi] {
				c.mins[mi] = v
			}
			mi++
		case ops.Max:
			if v := b.nums[i](rid); v > c.maxs[xi] {
				c.maxs[xi] = v
			}
			xi++
		}
	}
}

// Cube is the immutable materialized result.
type Cube struct {
	spec    Spec
	dims    []dimEnc
	vals    []string
	byGroup map[int32][]*cell
	nCells  int
}

// Build finalizes the cube, indexing cells by base-query output group.
func (b *Builder) Build() *Cube {
	c := &Cube{spec: b.spec, dims: b.dims, vals: b.vals, byGroup: map[int32][]*cell{}, nCells: len(b.order)}
	for _, cl := range b.order {
		c.byGroup[cl.group] = append(c.byGroup[cl.group], cl)
	}
	return c
}

// Cells returns the total number of materialized cells.
func (c *Cube) Cells() int { return c.nCells }

// Query materializes the consuming query's answer for one base-query output
// group: a relation with the drill-down dimensions and aggregate columns.
// Optional fixed values (dimension name → int64 or string) filter cells, which
// is how a cube covering skipping attributes answers parameterized queries.
func (c *Cube) Query(group int32, fixed map[string]any) (*storage.Relation, error) {
	schema := make(storage.Schema, 0, len(c.dims)+len(c.spec.Aggs))
	for _, d := range c.dims {
		schema = append(schema, storage.Field{Name: d.name, Type: d.typ})
	}
	for _, a := range c.spec.Aggs {
		t := storage.TFloat
		if a.Fn == ops.Count {
			t = storage.TInt
		}
		schema = append(schema, storage.Field{Name: a.Name, Type: t})
	}

	// Resolve fixed dimension filters to codes.
	type fix struct {
		dim int
		val int64
	}
	var fixes []fix
	for name, v := range fixed {
		di := -1
		for i, d := range c.dims {
			if d.name == name {
				di = i
			}
		}
		if di < 0 {
			return nil, fmt.Errorf("cube: %q is not a cube dimension", name)
		}
		switch tv := v.(type) {
		case int64:
			fixes = append(fixes, fix{di, tv})
		case int:
			fixes = append(fixes, fix{di, int64(tv)})
		case string:
			code, ok := lookupCode(c.vals, tv)
			if !ok {
				// Value never observed: the filtered result is empty.
				fixes = append(fixes, fix{di, -1})
			} else {
				fixes = append(fixes, fix{di, code})
			}
		default:
			return nil, fmt.Errorf("cube: unsupported filter value %T for %q", v, name)
		}
	}

	var matched []*cell
	for _, cl := range c.byGroup[group] {
		ok := true
		for _, f := range fixes {
			if cl.dims[f.dim] != f.val {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, cl)
		}
	}

	out := storage.NewRelation("cube", schema, len(matched))
	for row, cl := range matched {
		for di, d := range c.dims {
			if d.typ == storage.TInt {
				out.Cols[di].Ints[row] = cl.dims[di]
			} else {
				out.Cols[di].Strs[row] = c.vals[cl.dims[di]]
			}
		}
		si, mi, xi, ci := 0, 0, 0, 0
		for ai, a := range c.spec.Aggs {
			col := len(c.dims) + ai
			switch a.Fn {
			case ops.Count:
				out.Cols[col].Ints[row] = cl.cnts[ci]
				ci++
			case ops.Sum:
				out.Cols[col].Floats[row] = cl.sums[si]
				si++
				ci++
			case ops.Avg:
				if cl.cnts[ci] > 0 {
					out.Cols[col].Floats[row] = cl.sums[si] / float64(cl.cnts[ci])
				}
				si++
				ci++
			case ops.Min:
				out.Cols[col].Floats[row] = cl.mins[mi]
				mi++
			case ops.Max:
				out.Cols[col].Floats[row] = cl.maxs[xi]
				xi++
			}
		}
	}
	return out, nil
}

func lookupCode(vals []string, v string) (int64, bool) {
	for i, s := range vals {
		if s == v {
			return int64(i), true
		}
	}
	return 0, false
}
