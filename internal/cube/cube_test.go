package cube_test

import (
	"math"
	"testing"

	"smoke/internal/cube"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func fixture() *storage.Relation {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "z", Type: storage.TInt},
		{Name: "mode", Type: storage.TString},
		{Name: "tax", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	})
	modes := []string{"MAIL", "SHIP"}
	for i := 0; i < 200; i++ {
		rel.AppendRow(i%2, modes[i%2], i%4, float64(i))
	}
	return rel
}

func spec() cube.Spec {
	return cube.Spec{
		Dims: []string{"mode", "tax"},
		Aggs: []cube.AggDef{
			{Fn: ops.Count, Name: "c"},
			{Fn: ops.Sum, Arg: expr.C("v"), Name: "s"},
			{Fn: ops.Avg, Arg: expr.C("v"), Name: "a"},
			{Fn: ops.Min, Arg: expr.C("v"), Name: "mn"},
			{Fn: ops.Max, Arg: expr.C("v"), Name: "mx"},
		},
	}
}

// buildVia runs the group-by with the cube observer attached, the way capture
// integrates the push-down.
func buildVia(t *testing.T, rel *storage.Relation) (*cube.Cube, ops.AggResult) {
	t.Helper()
	b, err := cube.NewBuilder(rel, spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ops.HashAgg(rel, nil, ops.GroupBySpec{
		Keys: []string{"z"},
		Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "cnt"}},
	}, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Observe: b.Observe})
	if err != nil {
		t.Fatal(err)
	}
	return b.Build(), res
}

func TestCubeMatchesDirectAggregation(t *testing.T) {
	rel := fixture()
	c, res := buildVia(t, rel)
	// For every base group, the cube's answer must equal re-running the
	// consuming query (group by mode, tax over the group's lineage).
	for slot := 0; slot < res.Out.N; slot++ {
		want, err := ops.HashAgg(rel, res.BW.List(slot), ops.GroupBySpec{
			Keys: []string{"mode", "tax"},
			Aggs: []ops.AggSpec{
				{Fn: ops.Count, Name: "c"},
				{Fn: ops.Sum, Arg: expr.C("v"), Name: "s"},
			},
		}, ops.AggOpts{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(int32(slot), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.Out.N {
			t.Fatalf("group %d: cube cells = %d, recompute = %d", slot, got.N, want.Out.N)
		}
		// Index want rows by (mode, tax).
		type key struct {
			m string
			x int64
		}
		ref := map[key][2]float64{}
		for i := 0; i < want.Out.N; i++ {
			ref[key{want.Out.Str(0, i), want.Out.Int(1, i)}] = [2]float64{
				float64(want.Out.Int(2, i)), want.Out.Float(3, i),
			}
		}
		for i := 0; i < got.N; i++ {
			k := key{got.Str(0, i), got.Int(1, i)}
			w, ok := ref[k]
			if !ok {
				t.Fatalf("group %d: unexpected cell %v", slot, k)
			}
			if float64(got.Int(2, i)) != w[0] {
				t.Fatalf("group %d cell %v: count %d want %v", slot, k, got.Int(2, i), w[0])
			}
			if math.Abs(got.Float(3, i)-w[1]) > 1e-9 {
				t.Fatalf("group %d cell %v: sum %v want %v", slot, k, got.Float(3, i), w[1])
			}
		}
	}
}

func TestCubeFilteredQuery(t *testing.T) {
	rel := fixture()
	c, _ := buildVia(t, rel)
	got, err := c.Query(0, map[string]any{"mode": "MAIL"})
	if err != nil {
		t.Fatal(err)
	}
	if got.N == 0 {
		t.Fatal("filtered query empty")
	}
	for i := 0; i < got.N; i++ {
		if got.Str(0, i) != "MAIL" {
			t.Fatal("filter leaked other modes")
		}
	}
	// Int-dim filter too.
	got, err = c.Query(0, map[string]any{"tax": 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.N; i++ {
		if got.Int(1, i) != 2 {
			t.Fatal("int filter leaked")
		}
	}
	// Unseen value: empty result, no error.
	got, err = c.Query(0, map[string]any{"mode": "NOPE"})
	if err != nil || got.N != 0 {
		t.Fatalf("unseen value: N=%d err=%v", got.N, err)
	}
}

func TestCubeAvgMinMax(t *testing.T) {
	rel := fixture()
	c, res := buildVia(t, rel)
	for slot := 0; slot < res.Out.N; slot++ {
		got, err := c.Query(int32(slot), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < got.N; i++ {
			cnt := got.Int(2, i)
			sum := got.Float(3, i)
			avg := got.Float(4, i)
			mn := got.Float(5, i)
			mx := got.Float(6, i)
			if math.Abs(avg-sum/float64(cnt)) > 1e-9 {
				t.Fatal("avg inconsistent with sum/count")
			}
			if mn > mx {
				t.Fatal("min > max")
			}
		}
	}
}

func TestCubeErrors(t *testing.T) {
	rel := fixture()
	if _, err := cube.NewBuilder(rel, cube.Spec{}, nil); err == nil {
		t.Error("no dims should error")
	}
	if _, err := cube.NewBuilder(rel, cube.Spec{Dims: []string{"nope"}}, nil); err == nil {
		t.Error("unknown dim should error")
	}
	if _, err := cube.NewBuilder(rel, cube.Spec{Dims: []string{"v"}}, nil); err == nil {
		t.Error("float dim should error (must be discretized)")
	}
	if _, err := cube.NewBuilder(rel, cube.Spec{Dims: []string{"z"},
		Aggs: []cube.AggDef{{Fn: ops.Sum, Name: "s"}}}, nil); err == nil {
		t.Error("SUM without arg should error")
	}
	if _, err := cube.NewBuilder(rel, cube.Spec{Dims: []string{"z"},
		Aggs: []cube.AggDef{{Fn: ops.CountDistinct, Arg: expr.C("v"), Name: "d"}}}, nil); err == nil {
		t.Error("holistic aggregate should error")
	}
	c, _ := buildVia(t, rel)
	if _, err := c.Query(0, map[string]any{"notadim": 1}); err == nil {
		t.Error("unknown filter dim should error")
	}
	if _, err := c.Query(0, map[string]any{"tax": 1.5}); err == nil {
		t.Error("unsupported filter type should error")
	}
}
