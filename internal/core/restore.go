package core

import (
	"smoke/internal/lineage"
	"smoke/internal/plan"
	"smoke/internal/storage"
)

// RestoreResult reassembles a Result from its persisted parts (the disk
// tier's exchange shape): the output relation, group counts, the captured
// lineage indexes, and the base-relation snapshots the capture's rids
// address. The restored result serves bound traces exactly like the original
// — Backward/Forward, distinct variants, and ConsumeGroupBy when the capture
// spans a single base — but carries no plan (it already executed; only the
// lineage survives demotion), so optimizer reasoning over scan equivalence
// is unavailable until the client re-runs the base query.
func RestoreResult(db *DB, out *storage.Relation, groupCounts []int64,
	capture *lineage.Capture, bases map[string]*storage.Relation) *Result {
	if capture == nil {
		capture = lineage.NewCapture()
	}
	res := &Result{
		Out: out, GroupCounts: groupCounts,
		db: db, capture: capture, bases: bases,
	}
	if len(bases) == 1 {
		for _, rel := range bases {
			res.baseRel = rel
		}
	}
	return res
}

// RestoreView reassembles a segment-backed trace view: the same wiring as
// RestoreResult, but flagged as a view. The server's registry answers small
// bound traces straight off a view — the encoded indexes alias the mapped
// segment, so a trace touching few groups faults in only the pages its seed
// lists need — without charging the memory budget or taking an LRU slot.
// A view becomes a regular retained result by simply being retained (the
// flag records provenance, not a capability difference).
func RestoreView(db *DB, out *storage.Relation, groupCounts []int64,
	capture *lineage.Capture, bases map[string]*storage.Relation) *Result {
	res := RestoreResult(db, out, groupCounts, capture, bases)
	res.view = true
	return res
}

// IsView reports whether the result was restored as a transient
// segment-backed trace view (RestoreView) rather than promoted into memory.
func (r *Result) IsView() bool { return r.view }

// TraceCost estimates what a backward trace with the given seeds against
// table would touch: trace is the summed encoded bytes of the seeds' rid
// lists (the pages an in-situ trace faults in), restore is the bytes a full
// promotion would re-retain (MemBytes). ok is false when the cost is
// unknowable — no encoded backward index for table, or a seed out of range —
// and the caller should fall back to promotion (whose own validation turns a
// bad seed into a client error).
func (r *Result) TraceCost(table string, seeds []lineage.Rid) (trace, restore int64, ok bool) {
	if r.capture == nil {
		return 0, 0, false
	}
	ix, err := r.capture.BackwardIndex(table)
	if err != nil || ix.Kind != lineage.EncodedMany || ix.Enc == nil {
		return 0, 0, false
	}
	n := ix.Enc.Len()
	for _, s := range seeds {
		if int(s) < 0 || int(s) >= n {
			return 0, 0, false
		}
		trace += int64(len(ix.Enc.ListBytes(int(s))))
	}
	return trace, r.MemBytes(), true
}

// Bases returns the base-relation snapshots a result's capture addresses,
// keyed by table name — what the disk tier persists alongside the indexes so
// forward seeds still resolve after a restart. Results carry explicit
// restored bases after RestoreResult; live results walk their plan.
func (r *Result) Bases() map[string]*storage.Relation {
	if r.bases != nil {
		return r.bases
	}
	out := map[string]*storage.Relation{}
	if r.baseRel != nil {
		out[r.baseRel.Name] = r.baseRel
	}
	if r.plan != nil {
		for _, rel := range plan.Bases(r.plan, nil) {
			out[rel.Name] = rel
		}
	}
	return out
}
