package core

import (
	"smoke/internal/lineage"
	"smoke/internal/plan"
	"smoke/internal/storage"
)

// RestoreResult reassembles a Result from its persisted parts (the disk
// tier's exchange shape): the output relation, group counts, the captured
// lineage indexes, and the base-relation snapshots the capture's rids
// address. The restored result serves bound traces exactly like the original
// — Backward/Forward, distinct variants, and ConsumeGroupBy when the capture
// spans a single base — but carries no plan (it already executed; only the
// lineage survives demotion), so optimizer reasoning over scan equivalence
// is unavailable until the client re-runs the base query.
func RestoreResult(db *DB, out *storage.Relation, groupCounts []int64,
	capture *lineage.Capture, bases map[string]*storage.Relation) *Result {
	if capture == nil {
		capture = lineage.NewCapture()
	}
	res := &Result{
		Out: out, GroupCounts: groupCounts,
		db: db, capture: capture, bases: bases,
	}
	if len(bases) == 1 {
		for _, rel := range bases {
			res.baseRel = rel
		}
	}
	return res
}

// Bases returns the base-relation snapshots a result's capture addresses,
// keyed by table name — what the disk tier persists alongside the indexes so
// forward seeds still resolve after a restart. Results carry explicit
// restored bases after RestoreResult; live results walk their plan.
func (r *Result) Bases() map[string]*storage.Relation {
	if r.bases != nil {
		return r.bases
	}
	out := map[string]*storage.Relation{}
	if r.baseRel != nil {
		out[r.baseRel.Name] = r.baseRel
	}
	if r.plan != nil {
		for _, rel := range plan.Bases(r.plan, nil) {
			out[rel.Name] = rel
		}
	}
	return out
}
