package core_test

import (
	"fmt"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func exampleOrders() *storage.Relation {
	rel := storage.NewEmpty("orders", storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "amount", Type: storage.TFloat},
	})
	rel.AppendRow("emea", 10.0)
	rel.AppendRow("apac", 20.0)
	rel.AppendRow("emea", 30.0)
	rel.AppendRow("apac", 5.0)
	return rel
}

// Example walks the paper's core loop: open a DB, run an aggregation with
// lineage capture, and trace an output group back to its base rows.
func Example() {
	db := core.Open()
	db.Register(exampleOrders())

	res, _ := db.Query().
		From("orders", nil).
		GroupBy("region").
		Agg(ops.Sum, expr.C("amount"), "total").
		Run(core.CaptureOptions{Mode: ops.Inject})

	rids, _ := res.Backward("orders", []lineage.Rid{0})
	fmt.Printf("%s = %.0f from base rows %v\n", res.Out.Str(0, 0), res.Out.Float(1, 0), rids)
	// Output: emea = 40 from base rows [0 2]
}

// ExampleQuery_Backward builds a lineage-consuming query: the rows behind an
// output group, filtered and re-aggregated through the plan layer.
func ExampleQuery_Backward() {
	db := core.Open()
	db.Register(exampleOrders())

	base, _ := db.Query().
		From("orders", nil).
		GroupBy("region").
		Agg(ops.Sum, expr.C("amount"), "total").
		Run(core.CaptureOptions{Mode: ops.Inject})

	// Count the base rows behind group 0 with amount < 25 (the Where sinks
	// into the trace's rid-list expansion).
	cons, _ := db.Query().
		Backward(base, "orders", []lineage.Rid{0}).
		Where(expr.LtE(expr.C("amount"), expr.F(25))).
		GroupBy("region").
		Agg(ops.Count, nil, "n").
		Run(core.CaptureOptions{Mode: ops.Inject})

	fmt.Printf("%s kept %d of 2 rows\n", cons.Out.Str(0, 0), cons.Out.Int(1, 0))
	// Output: emea kept 1 of 2 rows
}

// ExampleQuery_BackwardWhere seeds the trace by predicate over the output
// rows instead of explicit rids — "the rows behind every group whose total
// exceeds 20".
func ExampleQuery_BackwardWhere() {
	db := core.Open()
	db.Register(exampleOrders())

	base, _ := db.Query().
		From("orders", nil).
		GroupBy("region").
		Agg(ops.Sum, expr.C("amount"), "total").
		Run(core.CaptureOptions{Mode: ops.Inject})

	traced, _ := db.Query().
		BackwardWhere(base, "orders", expr.GtE(expr.C("total"), expr.F(25))).
		Run(core.CaptureOptions{})

	fmt.Println("rows behind heavy groups:", traced.Out.N)
	// Output: rows behind heavy groups: 2
}
