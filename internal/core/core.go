// Package core is the engine facade — the paper's primary contribution
// assembled behind one API. A DB registers base relations; a Query describes
// an SPJA block (single- or multi-table) plus capture options that encode the
// workload knowledge of §4 (pruning, selection push-down, data skipping,
// group-by push-down); a Result answers backward/forward lineage queries and
// executes lineage-consuming queries over the captured indexes.
//
// Execution is morsel-parallel: Open(WithWorkers(n)) shares a worker pool
// across queries, each query splits its scans into contiguous row-range
// partitions with partition-local lineage capture, and the merged result is
// identical to the workers=1 (serial) specialization that reproduces the
// paper's experiments. A DB is safe for concurrent Query().Run() calls.
//
// The root package smoke re-exports this API for library users.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smoke/internal/cube"
	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// Rid is a record id within a relation.
type Rid = lineage.Rid

// DB is an in-memory database instance. A DB is safe for concurrent use:
// queries may Run concurrently with each other (and with Register calls)
// from any number of goroutines, sharing one worker pool.
type DB struct {
	cat     *storage.Catalog
	workers int

	// runs/traces count base-query executions vs lineage traces asked — the
	// observed trace rate Strategy Auto costs against (TraceRate).
	runs   atomic.Uint64
	traces atomic.Uint64

	mu     sync.Mutex // guards pool creation and closed
	pool   *pool.Pool
	closed bool
}

// Option configures a DB at Open time.
type Option func(*DB)

// WithWorkers sets the DB's default intra-query parallelism: queries run
// their morsel-parallel kernels over a shared pool of n workers (n <= 1
// keeps the serial specialization, the paper's original execution model).
// Per-query CaptureOptions.Parallelism overrides the default.
func WithWorkers(n int) Option {
	return func(db *DB) {
		if n < 1 {
			n = 1
		}
		db.workers = n
	}
}

// Open returns an empty database. The worker pool is created lazily by the
// first parallel query (sharedPool), so a DB that never runs one spawns no
// goroutines.
func Open(opts ...Option) *DB {
	db := &DB{cat: storage.NewCatalog(), workers: 1}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Workers returns the DB's default intra-query parallelism.
func (db *DB) Workers() int { return db.workers }

// Close releases the DB's worker-pool goroutines. It is idempotent, safe on
// a never-parallel DB, and safe to call while queries are in flight (they
// finish normally; the pool drains once the last one releases it). Queries
// run after Close execute serially.
func (db *DB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
	db.pool.Close()
}

// Register adds a relation under its own name.
func (db *DB) Register(rel *storage.Relation) { db.cat.Register(rel) }

// Table returns a registered relation.
func (db *DB) Table(name string) (*storage.Relation, error) { return db.cat.Relation(name) }

// Catalog exposes key metadata registration.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// CaptureOptions selects the instrumentation paradigm and the workload-aware
// optimizations to apply during capture.
type CaptureOptions struct {
	// Mode is None (baseline), Inject, or Defer (§3.2).
	Mode ops.CaptureMode
	// Strategy selects how the result provides lineage: eager index capture,
	// lazy re-execution, a hybrid, or a cost-based automatic choice (see the
	// Strategy constants in strategy.go). The zero value keeps the
	// pre-strategy contract: Mode alone decides, with Mode None now yielding
	// a lazy result (traces re-execute the stored plan) instead of erroring.
	// Conflicting combinations (a capturing Mode with Lazy, direction or
	// push-down options with Lazy/Hybrid) fail Run with a structured Invalid.
	Strategy Strategy
	// Dirs selects which directions to capture (defaults to both when Mode
	// is not None and no per-table override is given).
	Dirs ops.Directions
	// TableDirs prunes capture per relation name (§4.1); relations absent
	// from a non-nil map are not captured at all.
	TableDirs map[string]ops.Directions
	// CountsByKey supplies exact cardinalities per integer group key
	// (§6.1.1 "Cardinality Statistics"); single-table queries only.
	CountsByKey []int32
	// PushdownFilter restricts backward capture to matching records
	// (selection push-down, §4.2); single-table queries only.
	PushdownFilter expr.Expr
	// PartitionBy partitions backward rid arrays by attributes (data
	// skipping, §4.2); single-table queries only.
	PartitionBy []string
	// Cube materializes drill-down aggregates during capture (group-by
	// push-down, §4.2); single-table queries only.
	Cube *cube.Spec
	// Params binds named expression parameters.
	Params expr.Params
	// Parallelism overrides the DB's worker count for this query: 0 uses
	// the DB default (Open(WithWorkers(n))), 1 forces the serial path, and
	// n > 1 runs the morsel-parallel kernels with n partitions. Parallel
	// runs produce lineage identical to serial runs; float aggregates (SUM,
	// AVG) can differ in the final ulp because partial sums accumulate per
	// partition (addition order), all other output is identical.
	Parallelism int
	// Compress stores the captured lineage indexes in their adaptive
	// compressed forms (per-list choice among raw rids, delta+varint,
	// run-length, and bitmap encodings — see internal/lineage). Encoding
	// happens post-capture (per partition in parallel runs, merged by
	// concatenating encoded lists); Backward/Forward and consuming queries
	// read the encoded indexes in place, element-identically to raw capture.
	// Data-skipping (PartitionBy) indexes are not compressed.
	Compress bool
}

// workers resolves the effective parallelism for a query against db's
// default. The morsel count is clamped to a small multiple of the pool's
// worker count: more morsels than that adds partition-local state (hash
// tables, accumulators) without adding concurrency, so an absurd override
// (e.g. derived from data size) cannot balloon memory.
func (o CaptureOptions) workers(db *DB) (int, *pool.Pool) {
	w := o.Parallelism
	if w == 0 {
		w = db.workers
	}
	if w <= 1 {
		return 1, nil
	}
	pl := db.sharedPool(w)
	if pl == nil {
		return 1, nil // closed DB: serial fallback
	}
	if max := 4 * pl.Workers(); w > max {
		w = max
	}
	return w, pl
}

// sharedPool returns the DB's pool, creating it on first parallel use, or
// nil once the DB is closed. The pool is never replaced once created
// (replacing would leak the old pool's worker goroutines, and closing it
// could race with queries still using it): a Parallelism override larger
// than the pool still splits the query into that many morsels, which
// multiplex onto the existing workers. Worker count is the operator's
// explicit Open(WithWorkers(n)) choice; a per-query override can only size
// the pool up to GOMAXPROCS, so one query passing a huge Parallelism (e.g.
// derived from data size) cannot spawn unbounded long-lived goroutines.
func (db *DB) sharedPool(w int) *pool.Pool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if db.pool == nil {
		n := db.workers
		if n < 2 {
			// Pool sized by a Parallelism override rather than Open.
			n = w
			if g := runtime.GOMAXPROCS(0); n > g {
				n = g
			}
		}
		db.pool = pool.New(n)
	}
	return db.pool
}

func (o CaptureOptions) dirs() ops.Directions {
	if o.Mode == ops.None {
		return 0
	}
	if o.Dirs == 0 && o.TableDirs == nil {
		return ops.CaptureBoth
	}
	return o.Dirs
}

// Query builds an SPJA block against a DB. Errors accumulate and surface at
// Run, so call chains stay uncluttered. Run lowers the builder state onto the
// logical plan layer (internal/plan), runs the optimizer — whose fusion rule,
// not the front end, decides when the fused SPJA executor applies — and
// executes the optimized plan (exec.RunPlan).
type Query struct {
	db     *DB
	names  []string
	tables []exec.TableRef
	joins  []exec.JoinEdge
	keys   []exec.KeyRef
	aggs   []exec.AggRef
	err    error

	// prebuilt carries an externally lowered plan (QueryPlan, the SQL front
	// end); when set, the builder state above is unused.
	prebuilt plan.Node
	// traceNode carries a lineage trace root (Backward/Forward): the query's
	// input rows are the trace's output, and GroupBy/Agg build a consuming
	// aggregation on top of it. traceFilter is the consuming predicate over
	// the traced rows (Where); the optimizer sinks it into the trace.
	traceNode   plan.Node
	traceFilter expr.Expr
	// trace provenance, kept so TraceWith can rebuild the node under a
	// forced strategy.
	traceRes   *Result
	traceDir   TraceDir
	traceTable string
	traceSeed  Seed
}

// Query starts a new query.
func (db *DB) Query() *Query { return &Query{db: db} }

// QueryPlan wraps an already-lowered logical plan (e.g. from the SQL front
// end) as a runnable query: Run optimizes and executes it exactly like a
// builder query.
func (db *DB) QueryPlan(n plan.Node) *Query { return &Query{db: db, prebuilt: n} }

// Trace starts the query from a lineage trace of res in the given direction
// — the unified form of the Backward/BackwardWhere/Forward/ForwardWhere
// constructors. seed selects the starting rows: Rids(...) for explicit rids
// (output rids for TraceBackward, base rids for TraceForward), Where(pred)
// for a predicate seed, and the zero Seed for everything. The query's input
// rows are the traced rows (duplicates preserved — transformational
// semantics); GroupBy/Agg on top build a lineage-consuming aggregation that
// runs through the plan layer, and the result is itself a single-table base
// query for further traces (§2.1). A keyless trace query simply returns the
// traced rows.
//
// When res captured the needed index direction the trace binds to it and is
// traced in place (raw or compressed) with the morsel-parallel trace
// operator. On a lazy or hybrid result with no such index the trace goes
// unbound: res's stored optimized plan re-executes with targeted capture —
// or collapses to a single filtered scan when the seed is key-shaped
// (optimizer trace-rewrite). TraceWith forces the path explicitly.
func (q *Query) Trace(res *Result, dir TraceDir, table string, seed Seed) *Query {
	if dir != TraceBackward && dir != TraceForward {
		q.fail(serr.New(serr.Invalid, "core: trace direction must be TraceBackward or TraceForward"))
		return q
	}
	// Resolve the relation instance res was captured against — not the
	// current catalog entry. If the table was re-registered since res ran,
	// the catalog relation is different data: tracing capture-time rids into
	// it would silently return wrong rows (or index out of range).
	rel := res.BaseRelation(table)
	if rel == nil {
		q.fail(serr.New(serr.NotFound, "core: result has no captured base relation %q", table))
		return q
	}
	if len(q.tables) > 0 || q.traceNode != nil || q.prebuilt != nil {
		q.fail(serr.New(serr.Invalid, "core: a trace must start the query"))
		return q
	}
	q.db.traces.Add(1)
	q.traceRes, q.traceDir, q.traceTable, q.traceSeed = res, dir, table, seed
	if dir == TraceBackward {
		q.names = append(q.names, table)
		q.tables = append(q.tables, exec.TableRef{Rel: rel})
	} else {
		q.names = append(q.names, res.Out.Name)
		q.tables = append(q.tables, exec.TableRef{Rel: res.Out})
	}
	lazy := res.TraceStrategy(table, dir) == StrategyLazy
	q.traceNode = res.buildTraceNode(dir, table, rel, seed, lazy, false)
	return q
}

// TraceWith forces the pending trace's answer path, overriding the result's
// own routing: StrategyEager requires the captured index and fails with a
// structured Invalid when the result has none; StrategyLazy requires the
// stored plan and re-executes it even when an index exists.
// StrategyDefault/StrategyAuto keep the result's routing; Hybrid is a
// capture-time split, not a per-trace path, and is Invalid here.
func (q *Query) TraceWith(s Strategy) *Query {
	if q.traceNode == nil || q.traceRes == nil {
		q.fail(serr.New(serr.Invalid, "core: TraceWith applies to trace queries"))
		return q
	}
	res, dir, table := q.traceRes, q.traceDir, q.traceTable
	rel := res.BaseRelation(table)
	switch s {
	case StrategyDefault, StrategyAuto:
		return q
	case StrategyEager:
		if res.TraceStrategy(table, dir) != StrategyEager {
			q.fail(serr.New(serr.Invalid,
				"core: result captured no %s index for %q; eager trace unavailable", dir, table))
			return q
		}
		q.traceNode = res.buildTraceNode(dir, table, rel, q.traceSeed, false, false)
	case StrategyLazy:
		if res.plan == nil {
			q.fail(serr.New(serr.Invalid,
				"core: result carries no plan; lazy trace unavailable"))
			return q
		}
		q.traceNode = res.buildTraceNode(dir, table, rel, q.traceSeed, true, false)
	default:
		q.fail(serr.New(serr.Invalid, "core: per-trace strategy must be eager or lazy"))
	}
	return q
}

// Backward starts the query from the backward lineage trace of res into
// table: the base rows of table that contributed to the given output rows
// of res. A nil outRids seeds everything.
//
// Deprecated: Backward is Trace(res, TraceBackward, table, Rids(outRids...)).
func (q *Query) Backward(res *Result, table string, outRids []Rid) *Query {
	return q.Trace(res, TraceBackward, table, ridSeed(outRids, outRids != nil))
}

// BackwardWhere is Backward seeded by a predicate over res's output rows.
//
// Deprecated: BackwardWhere is Trace(res, TraceBackward, table, Where(pred)).
func (q *Query) BackwardWhere(res *Result, table string, seedPred expr.Expr) *Query {
	return q.Trace(res, TraceBackward, table, Where(seedPred))
}

// Forward starts the query from the forward lineage trace of res: the
// output rows of res that depend on the given base rows of table. A nil
// inRids seeds everything.
//
// Deprecated: Forward is Trace(res, TraceForward, table, Rids(inRids...)).
func (q *Query) Forward(res *Result, table string, inRids []Rid) *Query {
	return q.Trace(res, TraceForward, table, ridSeed(inRids, inRids != nil))
}

// ForwardWhere is Forward seeded by a predicate over table's base rows.
//
// Deprecated: ForwardWhere is Trace(res, TraceForward, table, Where(pred)).
func (q *Query) ForwardWhere(res *Result, table string, seedPred expr.Expr) *Query {
	return q.Trace(res, TraceForward, table, Where(seedPred))
}

// Where adds a consuming predicate over the trace's output rows — for
// Backward, base-relation columns; for Forward, source-output columns. The
// optimizer sinks it into the trace's expansion filter, so failing rows are
// dropped during rid-list expansion. Only trace queries take Where; plain
// blocks attach per-table filters in From/Join.
func (q *Query) Where(pred expr.Expr) *Query {
	if q.traceNode == nil {
		q.fail(serr.New(serr.Invalid, "core: Where applies to trace queries; use the From/Join filter arguments"))
		return q
	}
	if q.traceFilter == nil {
		q.traceFilter = pred
	} else {
		q.traceFilter = expr.And{L: q.traceFilter, R: pred}
	}
	return q
}

// From sets the first (or only) table with an optional filter.
func (q *Query) From(table string, filter expr.Expr) *Query {
	if q.traceNode != nil {
		q.fail(serr.New(serr.Invalid, "core: From after a trace is not supported (traces take no further tables)"))
		return q
	}
	rel, err := q.db.Table(table)
	if err != nil {
		q.fail(err)
		return q
	}
	q.names = append(q.names, table)
	q.tables = append(q.tables, exec.TableRef{Rel: rel, Filter: filter})
	return q
}

// Join adds a table joined to the prefix: prefixTable.leftCol = table.rightCol.
func (q *Query) Join(table string, filter expr.Expr, prefixTable, leftCol, rightCol string) *Query {
	rel, err := q.db.Table(table)
	if err != nil {
		q.fail(err)
		return q
	}
	lt := -1
	for i, n := range q.names {
		if n == prefixTable {
			lt = i
		}
	}
	if lt < 0 {
		q.fail(serr.New(serr.Invalid, "core: join references %q which is not in the query prefix", prefixTable))
		return q
	}
	q.names = append(q.names, table)
	q.tables = append(q.tables, exec.TableRef{Rel: rel, Filter: filter})
	q.joins = append(q.joins, exec.JoinEdge{LeftTable: lt, LeftCol: leftCol, RightCol: rightCol})
	return q
}

// GroupBy sets the group-by key columns; each resolves to the unique table
// containing it.
func (q *Query) GroupBy(cols ...string) *Query {
	for _, c := range cols {
		t, err := q.resolve(c)
		if err != nil {
			q.fail(err)
			return q
		}
		q.keys = append(q.keys, exec.KeyRef{Table: t, Col: c})
	}
	return q
}

// Agg adds an aggregate. Count takes a nil arg. The argument's columns must
// resolve to one table.
func (q *Query) Agg(fn ops.AggFn, arg expr.Expr, name string) *Query {
	return q.AggFiltered(fn, arg, nil, name)
}

// AggFiltered adds an aggregate that only folds rows satisfying filter (the
// CASE WHEN counting idiom of TPC-H Q12).
func (q *Query) AggFiltered(fn ops.AggFn, arg, filter expr.Expr, name string) *Query {
	t := len(q.tables) - 1 // COUNT(*) defaults to the fact (last) table
	for _, e := range []expr.Expr{arg, filter} {
		if e == nil {
			continue
		}
		for _, c := range expr.Columns(e) {
			ct, err := q.resolve(c)
			if err != nil {
				q.fail(err)
				return q
			}
			t = ct
		}
	}
	q.aggs = append(q.aggs, exec.AggRef{Fn: fn, Table: t, Arg: arg, Filter: filter, Name: name})
	return q
}

func (q *Query) resolve(col string) (int, error) {
	found := -1
	for i, tr := range q.tables {
		if tr.Rel.Schema.Col(col) >= 0 {
			if found >= 0 {
				return 0, serr.New(serr.Invalid, "core: column %q is ambiguous between %s and %s", col, q.names[found], q.names[i])
			}
			found = i
		}
	}
	if found < 0 {
		return 0, serr.New(serr.Invalid, "core: column %q not found in query tables %v", col, q.names)
	}
	return found, nil
}

func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// asSingleBlock extracts a prebuilt plan's single-table aggregation block
// when it has exactly the shape runSingle serves — a GroupBy over one
// (possibly filtered) base scan with unfiltered aggregates — as a builder
// query. HAVING/ORDER BY/LIMIT residue or joins disqualify it.
func (q *Query) asSingleBlock() (*Query, bool) {
	gb, ok := q.prebuilt.(plan.GroupBy)
	if !ok {
		return nil, false
	}
	child := gb.Child
	var filter expr.Expr
	if f, isFilter := child.(plan.Filter); isFilter {
		filter = f.Pred
		child = f.Child
	}
	sc, ok := child.(plan.Scan)
	if !ok {
		return nil, false
	}
	if sc.Filter != nil {
		if filter == nil {
			filter = sc.Filter
		} else {
			filter = expr.And{L: sc.Filter, R: filter}
		}
	}
	nq := &Query{db: q.db, names: []string{sc.Table},
		tables: []exec.TableRef{{Rel: sc.Rel, Filter: filter}}}
	for _, k := range gb.Keys {
		nq.keys = append(nq.keys, exec.KeyRef{Col: k})
	}
	for i, a := range gb.Aggs {
		if a.Filter != nil {
			return nil, false
		}
		nq.aggs = append(nq.aggs, exec.AggRef{Fn: a.Fn, Arg: a.Arg, Name: a.OutName(i)})
	}
	return nq, true
}

// Spec exposes the underlying SPJA block (for the benchmark harness).
func (q *Query) Spec() (exec.Spec, error) {
	if q.err != nil {
		return exec.Spec{}, q.err
	}
	return exec.Spec{Tables: q.tables, Joins: q.joins, Keys: q.keys, Aggs: q.aggs}, nil
}

// Plan lowers the query onto the logical plan IR (unoptimized): scans with
// their pipelined filters, a left-deep join chain, and a group-by on top.
// Prebuilt plans (QueryPlan) are returned as-is.
func (q *Query) Plan() (plan.Node, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.prebuilt != nil {
		return q.prebuilt, nil
	}
	if q.traceNode != nil {
		if len(q.joins) > 0 {
			return nil, serr.New(serr.Unsupported, "core: joins after a trace are not supported")
		}
		root := q.traceNode
		if q.traceFilter != nil {
			root = plan.Filter{Child: root, Pred: q.traceFilter}
		}
		if len(q.keys) == 0 {
			if len(q.aggs) > 0 {
				return nil, serr.New(serr.Invalid, "core: aggregates over a trace require GroupBy")
			}
			// A bare trace: the result is the traced rows themselves.
			return root, nil
		}
		gb := plan.GroupBy{Child: root}
		for _, k := range q.keys {
			gb.Keys = append(gb.Keys, k.Col)
		}
		for _, a := range q.aggs {
			gb.Aggs = append(gb.Aggs, plan.AggDef{Fn: a.Fn, Arg: a.Arg, Filter: a.Filter, Name: a.Name})
		}
		return gb, nil
	}
	if len(q.tables) == 0 {
		return nil, serr.New(serr.Invalid, "core: query has no tables")
	}
	if len(q.keys) == 0 {
		return nil, serr.New(serr.Unsupported, "core: only aggregation queries are supported; add GroupBy")
	}
	var n plan.Node = plan.Scan{Table: q.names[0], Rel: q.tables[0].Rel, Filter: q.tables[0].Filter}
	for i, je := range q.joins {
		n = plan.Join{
			Left:     n,
			Right:    plan.Scan{Table: q.names[i+1], Rel: q.tables[i+1].Rel, Filter: q.tables[i+1].Filter},
			LeftKey:  je.LeftCol,
			RightKey: je.RightCol,
			LeftQual: q.names[je.LeftTable], // the builder names the prefix table explicitly
		}
	}
	gb := plan.GroupBy{Child: n}
	for _, k := range q.keys {
		gb.Keys = append(gb.Keys, k.Col)
	}
	for _, a := range q.aggs {
		gb.Aggs = append(gb.Aggs, plan.AggDef{Fn: a.Fn, Arg: a.Arg, Filter: a.Filter, Name: a.Name})
	}
	return gb, nil
}

// Fingerprint returns the stable fingerprint of the query's optimized plan
// (plan.Fingerprint): two queries with equal fingerprints execute
// identically against the current catalog state, which is what the server's
// result cache keys on. Queries that cannot be planned (builder errors,
// push-down option paths) return an error; callers then simply skip caching.
func (q *Query) Fingerprint() (string, error) {
	p, err := q.Plan()
	if err != nil {
		return "", err
	}
	return plan.Fingerprint(plan.OptimizeNoTrace(p, plan.Opts{Catalog: q.db.cat})), nil
}

// Result is an executed base query: its output relation plus captured
// lineage, which Backward/Forward and the consuming-query helpers read.
type Result struct {
	Out         *storage.Relation
	GroupCounts []int64

	db      *DB
	capture *lineage.Capture
	// plan is the optimized plan that produced the result (nil for the
	// runSingle capture-push-down path): bound traces carry it so the
	// optimizer can reason about scan-and-filter equivalence.
	plan   plan.Node
	bwPart *lineage.PartitionedIndex
	cube   *cube.Cube
	// single-table metadata for consuming queries
	baseRel   *storage.Relation
	baseAgg   *ops.AggResult
	partAttrs []string
	params    expr.Params
	// bases is set on disk-recovered results (RestoreResult): the base
	// snapshots the capture addresses, resolved by BaseRelation in place of
	// the plan the original result carried.
	bases map[string]*storage.Relation
	// view marks a segment-backed trace view (RestoreView): a restored
	// result the server serves small bound traces off without retaining it
	// in the memory tier.
	view bool
	// strategy is the resolved capture strategy (strategy.go): it decides
	// whether a missing-index trace re-executes the stored plan (lazy,
	// hybrid) or fails like an explicitly pruned capture always has.
	strategy Strategy
}

// Run executes the query with the given capture options: the builder state
// (or prebuilt SQL plan) lowers onto the plan IR, the optimizer rewrites it
// (predicate pushdown, projection pruning, pk-fk detection, SPJA fusion), and
// exec.RunPlan executes the optimized plan. The workload-aware capture
// push-downs of §4.2 (cardinality statistics, selection push-down, data
// skipping, cube materialization) bypass the plan layer: they are
// capture-time options of the single-table hash aggregation and keep their
// dedicated path (runSingle).
func (q *Query) Run(opts CaptureOptions) (*Result, error) {
	if q.err != nil {
		return nil, q.err
	}
	if err := opts.validateStrategy(); err != nil {
		return nil, err
	}
	if q.traceNode == nil {
		q.db.runs.Add(1)
	}
	if opts.PushdownFilter != nil || opts.PartitionBy != nil || opts.Cube != nil || opts.CountsByKey != nil {
		if q.traceNode != nil {
			return nil, serr.New(serr.Unsupported, "core: capture push-down options are not supported on trace queries")
		}
		target := q
		if q.prebuilt != nil {
			// SQL-compiled queries qualify when their plan is a plain
			// single-table aggregation block.
			sq, ok := q.asSingleBlock()
			if !ok {
				return nil, serr.New(serr.Unsupported, "core: push-down options currently require a single-table query block")
			}
			target = sq
		} else if len(q.tables) != 1 {
			return nil, serr.New(serr.Unsupported, "core: push-down options currently require a single-table query block")
		}
		if len(target.keys) == 0 {
			return nil, serr.New(serr.Unsupported, "core: only aggregation queries are supported; add GroupBy")
		}
		return target.runSingle(opts)
	}
	p, err := q.Plan()
	if err != nil {
		return nil, err
	}
	optimized := plan.OptimizeNoTrace(p, plan.Opts{Catalog: q.db.cat})
	strat := resolveStrategy(q.db, opts, optimized)
	eopts := exec.PlanOpts{
		Mode: opts.Mode, Dirs: opts.Dirs, TableDirs: opts.TableDirs,
		Params: opts.Params, Compress: opts.Compress,
	}
	switch strat {
	case StrategyLazy:
		// Capture-free: the stored plan is the lineage.
		eopts.Mode, eopts.Dirs, eopts.TableDirs = ops.None, 0, nil
	case StrategyHybrid:
		// Backward eagerly, forward by re-execution.
		if eopts.Mode == ops.None {
			eopts.Mode = ops.Inject
		}
		eopts.Dirs, eopts.TableDirs = ops.CaptureBackward, nil
	case StrategyEager:
		// Auto may resolve a Mode-None request to eager capture.
		if eopts.Mode == ops.None {
			eopts.Mode = ops.Inject
		}
	}
	eopts.Workers, eopts.Pool = opts.workers(q.db)
	pres, err := exec.RunPlan(optimized, eopts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Out: pres.Out, GroupCounts: pres.GroupCounts,
		db: q.db, capture: pres.Capture, plan: optimized, params: opts.Params,
		strategy: strat,
	}
	// Single-base plans keep consuming-query support (ConsumeGroupBy
	// re-aggregates base rows addressed by backward rids).
	if rel := plan.SingleBase(optimized); rel != nil {
		res.baseRel = rel
	}
	return res, nil
}

func (q *Query) runSingle(opts CaptureOptions) (*Result, error) {
	rel := q.tables[0].Rel
	name := q.names[0]
	workers, pl := opts.workers(q.db)

	// Pipelined filter: materialize the selected rid set once; the group-by
	// runs over it and lineage rids stay base-relation rids.
	var inRids []Rid
	if q.tables[0].Filter != nil {
		pred, err := expr.CompilePred(q.tables[0].Filter, rel, opts.Params)
		if err != nil {
			return nil, err
		}
		// Select guarantees a non-nil OutRids under Mode None even for zero
		// matches — load-bearing here, because a nil rid subset means "all
		// rows" to HashAgg.
		sres := ops.Select(rel.N, pred, ops.SelectOpts{
			Mode: ops.None, Workers: workers, Pool: pl,
			Kernel: expr.CompileBitKernel(q.tables[0].Filter, rel, opts.Params),
		})
		inRids = sres.OutRids
	}

	spec := ops.GroupBySpec{}
	for _, k := range q.keys {
		spec.Keys = append(spec.Keys, k.Col)
	}
	for _, a := range q.aggs {
		if a.Filter != nil {
			return nil, serr.New(serr.Unsupported, "core: filtered aggregates require a join block")
		}
		spec.Aggs = append(spec.Aggs, ops.AggSpec{Fn: a.Fn, Arg: a.Arg, Name: a.Name})
	}

	dirs := opts.dirs()
	if opts.TableDirs != nil {
		dirs = opts.TableDirs[name]
	}
	aggOpts := ops.AggOpts{
		Mode: opts.Mode, Dirs: dirs,
		CountsByKey:    opts.CountsByKey,
		Params:         opts.Params,
		PushdownFilter: opts.PushdownFilter,
		PartitionBy:    opts.PartitionBy,
		Workers:        workers, Pool: pl,
		Compress: opts.Compress,
	}
	var cb *cube.Builder
	if opts.Cube != nil {
		var err error
		cb, err = cube.NewBuilder(rel, *opts.Cube, opts.Params)
		if err != nil {
			return nil, err
		}
		aggOpts.Observe = cb.Observe
	}
	ares, err := ops.HashAgg(rel, inRids, spec, aggOpts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Out: ares.Out, GroupCounts: ares.GroupCounts,
		db: q.db, capture: lineage.NewCapture(),
		baseRel: rel, baseAgg: &ares, partAttrs: opts.PartitionBy, params: opts.Params,
		strategy: StrategyEager,
	}
	if ix := ares.BackwardIndex(); ix != nil {
		res.capture.SetBackward(name, ix)
	}
	if ares.BWPart != nil {
		res.bwPart = ares.BWPart
	}
	if ix := ares.ForwardIndex(); ix != nil {
		res.capture.SetForward(name, ix)
	}
	if cb != nil {
		res.cube = cb.Build()
	}
	return res, nil
}

// Backward evaluates Lb(outRids ⊆ Out, table): the base rids of table that
// contributed to the given output rows. Lazy/hybrid results with no
// captured backward index answer by re-executing the stored plan
// (TraceStrategy reports the path).
func (r *Result) Backward(table string, outRids []Rid) ([]Rid, error) {
	return r.trace(TraceBackward, table, ridSeed(outRids, true), false)
}

// BackwardPartition evaluates a parameterized backward query over a
// data-skipping index: only the rid partition matching the attribute values
// (in PartitionBy order) is read (§4.2).
func (r *Result) BackwardPartition(outRid Rid, vals []any) ([]Rid, error) {
	if r.bwPart == nil {
		return nil, serr.New(serr.Invalid, "core: query was not captured with PartitionBy")
	}
	key, ok := ops.PartitionKey(r.baseAgg, r.baseRel, r.partAttrs, vals)
	if !ok {
		return nil, nil // value combination never observed
	}
	return r.bwPart.Partition(int(outRid), key), nil
}

// Forward evaluates Lf(inRids ⊆ table, Out). Lazy results answer by
// re-executing the stored plan.
func (r *Result) Forward(table string, inRids []Rid) ([]Rid, error) {
	return r.trace(TraceForward, table, ridSeed(inRids, true), false)
}

// ForwardDistinct is Forward with set semantics (highlighting use cases).
func (r *Result) ForwardDistinct(table string, inRids []Rid) ([]Rid, error) {
	return r.trace(TraceForward, table, ridSeed(inRids, true), true)
}

// BackwardDistinct is Backward with set semantics (which-provenance).
func (r *Result) BackwardDistinct(table string, outRids []Rid) ([]Rid, error) {
	return r.trace(TraceBackward, table, ridSeed(outRids, true), true)
}

// Capture exposes the raw lineage indexes (benchmark harness, applications).
func (r *Result) Capture() *lineage.Capture { return r.capture }

// BaseRelation returns the relation instance this result was executed
// against for the named table, or nil when the result never scanned it.
// Bound traces resolve through it rather than the catalog, so a table
// re-registered after the result ran cannot be confused with the snapshot
// the captured rids address.
func (r *Result) BaseRelation(table string) *storage.Relation {
	if r.baseRel != nil && r.baseRel.Name == table {
		return r.baseRel
	}
	if rel, ok := r.bases[table]; ok {
		return rel
	}
	if r.plan != nil {
		for _, rel := range plan.Bases(r.plan, nil) {
			if rel.Name == table {
				return rel
			}
		}
	}
	return nil
}

// MemBytes approximates the memory a retained result keeps alive: its output
// relation plus every captured lineage index (raw or encoded). Session
// registries (internal/server) budget their LRU eviction on it. Base
// relations are shared with the catalog and not charged to the result.
func (r *Result) MemBytes() int64 {
	var total int64
	if r.Out != nil {
		total += r.Out.MemBytes()
	}
	if r.capture != nil {
		total += r.capture.MemBytes()
	}
	total += int64(len(r.GroupCounts)) * 8
	return total
}

// bound packages the result as a trace binding: its output relation plus the
// captured indexes, traced in place by the physical trace operator.
func (r *Result) bound() *plan.BoundTrace {
	return &plan.BoundTrace{Out: r.Out, Capture: r.capture}
}

// Cube returns the partial data cube materialized by group-by push-down, or
// nil if none was requested.
func (r *Result) Cube() *cube.Cube { return r.cube }

// ConsumeGroupBy executes a lineage-consuming aggregation query over a base
// rid subset (typically the result of Backward), itself instrumented with the
// given options — consuming queries can act as base queries for further
// lineage queries (§2.1), which is how Q1b becomes the base query of Q1c.
// Only single-table results support this. Consuming queries run
// morsel-parallel like base queries: backward rid sets preserve duplicates
// (transformational semantics), which the duplicate-tolerant aggregation
// kernel (ops.AggOpts.DupRids) handles with output and lineage identical to
// a serial run. Query.Backward/Forward are the plan-level form of the same
// operation (with seed predicates, optimizer rewrites, and EXPLAIN).
func (r *Result) ConsumeGroupBy(rids []Rid, spec ops.GroupBySpec, opts CaptureOptions) (*Result, error) {
	if r.baseRel == nil {
		return nil, serr.New(serr.Unsupported, "core: consuming queries are supported over single-table results")
	}
	workers, pl := opts.workers(r.db)
	aggOpts := ops.AggOpts{
		Mode: opts.Mode, Dirs: opts.dirs(), Params: opts.Params,
		PushdownFilter: opts.PushdownFilter, PartitionBy: opts.PartitionBy,
		Workers: workers, Pool: pl, DupRids: true,
		Compress: opts.Compress,
	}
	var cb *cube.Builder
	if opts.Cube != nil {
		var err error
		cb, err = cube.NewBuilder(r.baseRel, *opts.Cube, opts.Params)
		if err != nil {
			return nil, err
		}
		aggOpts.Observe = cb.Observe
	}
	ares, err := ops.HashAgg(r.baseRel, rids, spec, aggOpts)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Out: ares.Out, GroupCounts: ares.GroupCounts,
		db: r.db, capture: lineage.NewCapture(),
		baseRel: r.baseRel, baseAgg: &ares, partAttrs: opts.PartitionBy, params: opts.Params,
		strategy: StrategyEager,
	}
	if ix := ares.BackwardIndex(); ix != nil {
		out.capture.SetBackward(r.baseRel.Name, ix)
	}
	if ares.BWPart != nil {
		out.bwPart = ares.BWPart
	}
	if ix := ares.ForwardIndex(); ix != nil {
		out.capture.SetForward(r.baseRel.Name, ix)
	}
	if cb != nil {
		out.cube = cb.Build()
	}
	return out, nil
}

// Gather materializes base rows (e.g. a backward-lineage result) from a
// registered table.
func (db *DB) Gather(table string, rids []Rid) (*storage.Relation, error) {
	rel, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	return rel.Gather(table+"_lineage", rids), nil
}
