package core_test

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/core"
	"smoke/internal/cube"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/tpch"
)

func openZipf(t *testing.T) (*core.DB, int) {
	t.Helper()
	db := core.Open()
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 1)
	db.Register(rel)
	return db, rel.N
}

func microQuery(db *core.DB) *core.Query {
	return db.Query().From("zipf", nil).
		GroupBy("z").
		Agg(ops.Count, nil, "cnt").
		Agg(ops.Sum, expr.C("v"), "sum_v")
}

func TestSingleTableQueryAndLineage(t *testing.T) {
	db, n := openZipf(t)
	res, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 10 {
		t.Fatalf("groups = %d", res.Out.N)
	}
	total := 0
	for o := 0; o < res.Out.N; o++ {
		rids, err := res.Backward("zipf", []core.Rid{core.Rid(o)})
		if err != nil {
			t.Fatal(err)
		}
		total += len(rids)
		// Forward of any lineage rid returns the same output.
		fw, err := res.Forward("zipf", rids[:1])
		if err != nil {
			t.Fatal(err)
		}
		if len(fw) != 1 || fw[0] != core.Rid(o) {
			t.Fatalf("forward(backward(o)) != o for group %d", o)
		}
	}
	if total != n {
		t.Fatalf("lineage covers %d rids, want %d", total, n)
	}
}

func TestQueryWithFilterKeepsBaseRids(t *testing.T) {
	db, _ := openZipf(t)
	res, err := db.Query().From("zipf", expr.LtE(expr.C("v"), expr.F(30))).
		GroupBy("z").Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Table("zipf")
	vcol := rel.Schema.MustCol("v")
	for o := 0; o < res.Out.N; o++ {
		rids, _ := res.Backward("zipf", []core.Rid{core.Rid(o)})
		for _, r := range rids {
			if rel.Float(vcol, int(r)) >= 30 {
				t.Fatal("lineage rid violates base filter")
			}
		}
	}
}

func TestSPJAQueryThroughFacade(t *testing.T) {
	tp := tpch.Generate(0.002, 42)
	db := core.Open()
	db.Register(tp.Customer)
	db.Register(tp.Orders)
	db.Register(tp.Lineitem)
	res, err := db.Query().
		From("customer", expr.EqE(expr.C("c_mktsegment"), expr.S("BUILDING"))).
		Join("orders", nil, "customer", "c_custkey", "o_custkey").
		Join("lineitem", nil, "orders", "o_orderkey", "l_orderkey").
		GroupBy("o_orderkey").
		Agg(ops.Sum, expr.MulE(expr.C("l_extendedprice"), expr.SubE(expr.F(1), expr.C("l_discount"))), "revenue").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N == 0 {
		t.Fatal("no groups")
	}
	rids, err := res.Backward("customer", []core.Rid{0})
	if err != nil || len(rids) == 0 {
		t.Fatalf("customer backward = %v, %v", rids, err)
	}
	seg := tp.Customer.Schema.MustCol("c_mktsegment")
	for _, r := range rids {
		if tp.Customer.Str(seg, int(r)) != "BUILDING" {
			t.Fatal("backward lineage violates customer filter")
		}
	}
}

func TestDataSkippingThroughFacade(t *testing.T) {
	tp := tpch.Generate(0.001, 7)
	db := core.Open()
	db.Register(tp.Lineitem)
	res, err := db.Query().From("lineitem", nil).
		GroupBy("l_returnflag", "l_linestatus").
		Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Mode: ops.Inject, PartitionBy: []string{"l_shipmode", "l_shipinstruct"}})
	if err != nil {
		t.Fatal(err)
	}
	part, err := res.BackwardPartition(0, []any{"MAIL", "NONE"})
	if err != nil {
		t.Fatal(err)
	}
	mc := tp.Lineitem.Schema.MustCol("l_shipmode")
	ic := tp.Lineitem.Schema.MustCol("l_shipinstruct")
	for _, r := range part {
		if tp.Lineitem.Str(mc, int(r)) != "MAIL" || tp.Lineitem.Str(ic, int(r)) != "NONE" {
			t.Fatal("partition returned wrong rids")
		}
	}
	// All partitions together equal the full backward lineage.
	all, err := res.Backward("lineitem", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != int(res.GroupCounts[0]) {
		t.Fatalf("partitioned backward covers %d, want %d", len(all), res.GroupCounts[0])
	}
	// Distinct variant over partitioned index.
	dist, err := res.BackwardDistinct("lineitem", []core.Rid{0, 0})
	if err != nil || len(dist) != len(all) {
		t.Fatalf("distinct over partitioned = %d rids, want %d", len(dist), len(all))
	}
}

func TestCubePushdownThroughFacade(t *testing.T) {
	db, _ := openZipf(t)
	res, err := microQuery(db).Run(core.CaptureOptions{
		Mode: ops.Inject,
		Cube: &cube.Spec{Dims: []string{"id"}, Aggs: []cube.AggDef{{Fn: ops.Count, Name: "c"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cube() == nil {
		t.Fatal("cube missing")
	}
	ans, err := res.Cube().Query(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of cube counts for group 0 equals the group's cardinality.
	total := int64(0)
	cc := ans.Schema.MustCol("c")
	for i := 0; i < ans.N; i++ {
		total += ans.Int(cc, i)
	}
	if total != res.GroupCounts[0] {
		t.Fatalf("cube counts sum to %d, want %d", total, res.GroupCounts[0])
	}
}

func TestConsumeGroupByActsAsBaseQuery(t *testing.T) {
	db, _ := openZipf(t)
	base, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	rids, _ := base.Backward("zipf", []core.Rid{0})
	// Consuming query: re-aggregate the lineage subset by id buckets,
	// itself captured so it can serve further lineage queries.
	consumed, err := base.ConsumeGroupBy(rids, ops.GroupBySpec{
		Keys: []string{"z"},
		Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}},
	}, core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if consumed.Out.N != 1 {
		t.Fatalf("lineage of one group re-grouped by z must give 1 group, got %d", consumed.Out.N)
	}
	// Its backward lineage equals the original rid set.
	back, err := consumed.Backward("zipf", []core.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	sortRids(back)
	sortRids(rids)
	if !reflect.DeepEqual(back, rids) {
		t.Fatal("consuming query lineage differs from its input rid set")
	}
}

func TestPruningThroughFacade(t *testing.T) {
	db, _ := openZipf(t)
	res, err := microQuery(db).Run(core.CaptureOptions{
		Mode:      ops.Inject,
		TableDirs: map[string]ops.Directions{"zipf": ops.CaptureBackward},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Forward("zipf", []core.Rid{0}); err == nil {
		t.Fatal("pruned forward direction should error")
	}
	if _, err := res.Backward("zipf", []core.Rid{0}); err != nil {
		t.Fatal("backward should be available")
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	db, _ := openZipf(t)
	if _, err := db.Query().From("nope", nil).GroupBy("z").Agg(ops.Count, nil, "c").Run(core.CaptureOptions{}); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := db.Query().From("zipf", nil).GroupBy("nope").Agg(ops.Count, nil, "c").Run(core.CaptureOptions{}); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := db.Query().From("zipf", nil).Agg(ops.Count, nil, "c").Run(core.CaptureOptions{}); err == nil {
		t.Error("missing GroupBy should error")
	}
	if _, err := db.Query().Run(core.CaptureOptions{}); err == nil {
		t.Error("empty query should error")
	}
	if _, err := db.Query().From("zipf", nil).Join("zipf", nil, "other", "id", "id").
		GroupBy("z").Agg(ops.Count, nil, "c").Run(core.CaptureOptions{}); err == nil {
		t.Error("join to unknown prefix table should error")
	}
	// Push-downs rejected for multi-table blocks.
	tp := tpch.Generate(0.001, 3)
	db2 := core.Open()
	db2.Register(tp.Orders)
	db2.Register(tp.Lineitem)
	q := db2.Query().From("orders", nil).
		Join("lineitem", nil, "orders", "o_orderkey", "l_orderkey").
		GroupBy("l_shipmode").Agg(ops.Count, nil, "c")
	if _, err := q.Run(core.CaptureOptions{Mode: ops.Inject, PartitionBy: []string{"l_tax"}}); err == nil {
		t.Error("multi-table push-down should error")
	}
}

func sortRids(r []lineage.Rid) {
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
}
