package core

import (
	"reflect"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func traceDB(t *testing.T, workers int) (*DB, *storage.Relation) {
	t.Helper()
	rel := storage.NewRelation("orders", storage.Schema{
		{Name: "state", Type: storage.TInt},
		{Name: "cat", Type: storage.TInt},
		{Name: "amount", Type: storage.TFloat},
	}, 60)
	for i := 0; i < 60; i++ {
		rel.Cols[0].Ints[i] = int64(i % 5)
		rel.Cols[1].Ints[i] = int64(i % 4)
		rel.Cols[2].Floats[i] = float64(i)
	}
	db := Open(WithWorkers(workers))
	db.Register(rel)
	return db, rel
}

// TestQueryBackwardMatchesConsumeGroupBy: the plan-level consuming query
// (Query.Backward + GroupBy) must be element-identical to the pre-plan
// Result.Backward + ConsumeGroupBy path.
func TestQueryBackwardMatchesConsumeGroupBy(t *testing.T) {
	for _, workers := range []int{1, 3} {
		db, _ := traceDB(t, workers)
		defer db.Close()
		base, err := db.Query().From("orders", nil).GroupBy("state").
			Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		seeds := []Rid{1, 3, 1} // duplicate seed: consuming semantics
		spec := ops.GroupBySpec{Keys: []string{"cat"},
			Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "n"}, {Fn: ops.Sum, Arg: expr.C("amount"), Name: "s"}}}

		rids, err := base.Backward("orders", seeds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.ConsumeGroupBy(rids, spec, CaptureOptions{Mode: ops.Inject, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}

		got, err := db.Query().Backward(base, "orders", seeds).GroupBy("cat").
			Agg(ops.Count, nil, "n").Agg(ops.Sum, expr.C("amount"), "s").
			Run(CaptureOptions{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		if got.Out.N != want.Out.N {
			t.Fatalf("workers=%d: %d groups, want %d", workers, got.Out.N, want.Out.N)
		}
		for c := range want.Out.Cols {
			if !reflect.DeepEqual(got.Out.Cols[c], want.Out.Cols[c]) {
				t.Fatalf("workers=%d: output column %d diverges", workers, c)
			}
		}
		for o := 0; o < want.Out.N; o++ {
			w, _ := want.Backward("orders", []Rid{Rid(o)})
			g, err := got.Backward("orders", []Rid{Rid(o)})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(w, g) {
				t.Fatalf("workers=%d: group %d backward lineage diverges:\n got %v\nwant %v", workers, o, g, w)
			}
		}
		// The consuming result is itself a single-base query: chain another
		// trace off it (Q1b → Q1c).
		chain, err := db.Query().Backward(got, "orders", []Rid{0}).Run(CaptureOptions{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		wantChain, err := got.Backward("orders", []Rid{0})
		if err != nil {
			t.Fatal(err)
		}
		if chain.Out.N != len(wantChain) {
			t.Fatalf("workers=%d: chained trace rows %d, want %d", workers, chain.Out.N, len(wantChain))
		}
	}
}

// TestQueryBackwardWhereSeedsByPredicate seeds the trace with a predicate
// over the base result's output.
func TestQueryBackwardWhereSeedsByPredicate(t *testing.T) {
	db, rel := traceDB(t, 1)
	defer db.Close()
	base, err := db.Query().From("orders", nil).GroupBy("state").
		Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query().BackwardWhere(base, "orders", expr.EqE(expr.C("state"), expr.I(2))).
		Run(CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < rel.N; i++ {
		if rel.Cols[0].Ints[i] == 2 {
			want++
		}
	}
	if res.Out.N != want {
		t.Fatalf("traced %d rows, want %d", res.Out.N, want)
	}
	for o := 0; o < res.Out.N; o++ {
		if res.Out.Cols[0].Ints[o] != 2 {
			t.Fatalf("row %d has state %d, want 2", o, res.Out.Cols[0].Ints[o])
		}
	}
}

// TestQueryWhereSinksIntoTrace: the consuming predicate drops traced rows
// during expansion, serial and parallel alike.
func TestQueryWhereSinksIntoTrace(t *testing.T) {
	for _, workers := range []int{1, 3} {
		db, rel := traceDB(t, workers)
		defer db.Close()
		base, err := db.Query().From("orders", nil).GroupBy("state").
			Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query().Backward(base, "orders", []Rid{1}).
			Where(expr.LtE(expr.C("amount"), expr.F(30))).
			GroupBy("cat").Agg(ops.Count, nil, "n").
			Run(CaptureOptions{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		for o := 0; o < res.Out.N; o++ {
			total += res.Out.Int(1, o)
		}
		want := int64(0)
		for i := 0; i < rel.N; i++ {
			if rel.Cols[0].Ints[i] == 1 && rel.Cols[2].Floats[i] <= 30 {
				want++
			}
		}
		if total != want {
			t.Fatalf("workers=%d: filtered consuming count %d, want %d", workers, total, want)
		}
	}
	// Where on a non-trace query errors.
	db, _ := traceDB(t, 1)
	defer db.Close()
	if _, err := db.Query().From("orders", nil).Where(expr.LtE(expr.C("amount"), expr.F(1))).
		GroupBy("state").Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject}); err == nil {
		t.Error("Where on a non-trace query should fail")
	}
}

// TestQueryForward traces forward from base rows into the result's groups.
func TestQueryForward(t *testing.T) {
	db, _ := traceDB(t, 1)
	defer db.Close()
	base, err := db.Query().From("orders", nil).GroupBy("state").
		Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query().Forward(base, "orders", []Rid{0, 7}).
		Run(CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("want 2 dependent groups, got %d", res.Out.N)
	}
	if res.Out.Cols[0].Ints[0] != 0 || res.Out.Cols[0].Ints[1] != 2 {
		t.Fatalf("dependent groups %v %v, want states 0 and 2",
			res.Out.Cols[0].Ints[0], res.Out.Cols[0].Ints[1])
	}
}

// TestTraceQueryErrors pins the builder misuse errors.
func TestTraceQueryErrors(t *testing.T) {
	db, _ := traceDB(t, 1)
	defer db.Close()
	base, err := db.Query().From("orders", nil).GroupBy("state").
		Agg(ops.Count, nil, "c").Run(CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query().From("orders", nil).Backward(base, "orders", []Rid{0}).
		GroupBy("cat").Agg(ops.Count, nil, "n").Run(CaptureOptions{Mode: ops.Inject}); err == nil {
		t.Error("trace after From should fail")
	}
	if _, err := db.Query().Backward(base, "orders", []Rid{0}).
		From("orders", expr.LtE(expr.C("amount"), expr.F(1))).
		GroupBy("cat").Agg(ops.Count, nil, "n").Run(CaptureOptions{Mode: ops.Inject}); err == nil {
		t.Error("From after a trace should fail (the filter would be silently dropped)")
	}
	if _, err := db.Query().Backward(base, "nope", []Rid{0}).Run(CaptureOptions{}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Query().Backward(base, "orders", []Rid{0}).GroupBy("cat").
		Agg(ops.Count, nil, "n").
		Run(CaptureOptions{Mode: ops.Inject, PushdownFilter: expr.EqE(expr.C("cat"), expr.I(1))}); err == nil {
		t.Error("capture push-down on a trace query should fail")
	}
	// Pruned capture: tracing a direction that was never captured errors.
	pruned, err := db.Query().From("orders", nil).GroupBy("state").
		Agg(ops.Count, nil, "c").
		Run(CaptureOptions{Mode: ops.Inject, Dirs: ops.CaptureForward})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query().Backward(pruned, "orders", []Rid{0}).Run(CaptureOptions{Mode: ops.Inject}); err == nil {
		t.Error("backward trace over a forward-only capture should fail")
	}
}
