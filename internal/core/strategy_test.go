package core_test

import (
	"reflect"
	"testing"

	"smoke/internal/core"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/serr"
)

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]core.Strategy{
		"":       core.StrategyDefault,
		"eager":  core.StrategyEager,
		"lazy":   core.StrategyLazy,
		"hybrid": core.StrategyHybrid,
		"auto":   core.StrategyAuto,
		"EAGER":  core.StrategyEager,
	} {
		got, err := core.ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := core.ParseStrategy("sometimes"); serr.KindOf(err) != serr.Invalid {
		t.Fatalf("ParseStrategy(unknown) = %v, want Invalid", err)
	}
}

// Conflicting strategy/capture combinations must fail structured-Invalid at
// Run, not silently override each other.
func TestStrategyConflictsAreInvalid(t *testing.T) {
	db, _ := openZipf(t)
	for name, opts := range map[string]core.CaptureOptions{
		"eager without capture": {Strategy: core.StrategyEager, Mode: ops.None},
		"lazy with inject":      {Strategy: core.StrategyLazy, Mode: ops.Inject},
		"lazy with defer":       {Strategy: core.StrategyLazy, Mode: ops.Defer},
		"lazy with dirs":        {Strategy: core.StrategyLazy, Dirs: ops.CaptureBackward},
		"hybrid with dirs":      {Strategy: core.StrategyHybrid, Mode: ops.Inject, Dirs: ops.CaptureForward},
		"hybrid with tabledirs": {Strategy: core.StrategyHybrid, Mode: ops.Inject,
			TableDirs: map[string]ops.Directions{"zipf": ops.CaptureBackward}},
	} {
		_, err := microQuery(db).Run(opts)
		if serr.KindOf(err) != serr.Invalid {
			t.Fatalf("%s: err = %v, want Invalid", name, err)
		}
	}
}

// Mode None without a strategy now yields a lazy result (the pre-strategy
// contract made traces fail); its traces are element-identical to eager.
func TestModeNoneDefaultsToLazy(t *testing.T) {
	db, _ := openZipf(t)
	eager, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.None})
	if err != nil {
		t.Fatal(err)
	}
	if got := lazy.Strategy(); got != core.StrategyLazy {
		t.Fatalf("Strategy() = %v, want lazy", got)
	}
	for o := 0; o < eager.Out.N; o++ {
		want, err := eager.Backward("zipf", []core.Rid{core.Rid(o)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := lazy.Backward("zipf", []core.Rid{core.Rid(o)})
		if err != nil {
			t.Fatalf("lazy backward of output %d: %v", o, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("lazy backward of output %d diverged", o)
		}
	}
	fw, err := lazy.Forward("zipf", []core.Rid{3})
	if err != nil {
		t.Fatal(err)
	}
	wantFw, _ := eager.Forward("zipf", []core.Rid{3})
	if !reflect.DeepEqual(wantFw, fw) {
		t.Fatalf("lazy forward = %v, want %v", fw, wantFw)
	}
}

// Auto picks lazy for trace-sparse single-table plans, hybrid for
// multi-input plans, and eager once explicit directions or a trace-heavy
// history say the indexes will be used.
func TestAutoStrategyResolution(t *testing.T) {
	db := core.Open()
	defer db.Close()
	db.Register(datagen.Zipf("zipf", 1.0, 500, 8, 1))
	db.Register(datagen.Gids("gids", 8, 1))

	single, err := db.Query().From("zipf", nil).GroupBy("z").Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Strategy: core.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.Strategy(); got != core.StrategyLazy {
		t.Fatalf("auto on fresh single-table plan = %v, want lazy", got)
	}

	join, err := db.Query().From("gids", nil).Join("zipf", nil, "gids", "id", "z").
		GroupBy("payload").Agg(ops.Sum, expr.C("v"), "sv").
		Run(core.CaptureOptions{Strategy: core.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if got := join.Strategy(); got != core.StrategyHybrid {
		t.Fatalf("auto on join plan = %v, want hybrid", got)
	}

	dirs, err := db.Query().From("zipf", nil).GroupBy("z").Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Strategy: core.StrategyAuto, Dirs: ops.CaptureBackward})
	if err != nil {
		t.Fatal(err)
	}
	if got := dirs.Strategy(); got != core.StrategyEager {
		t.Fatalf("auto with explicit Dirs = %v, want eager", got)
	}

	// Trace enough to tip the observed rate past 1/10th of runs: Auto turns
	// eager even for single-table shapes.
	if _, err := single.Backward("zipf", []core.Rid{0}); err != nil {
		t.Fatal(err)
	}
	runs, traces := db.TraceRate()
	if runs == 0 || traces == 0 {
		t.Fatalf("TraceRate() = (%d, %d), want both counted", runs, traces)
	}
	heavy, err := db.Query().From("zipf", nil).GroupBy("z").Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Strategy: core.StrategyAuto})
	if err != nil {
		t.Fatal(err)
	}
	if got := heavy.Strategy(); got != core.StrategyEager {
		t.Fatalf("auto under trace-heavy history = %v, want eager", got)
	}
}

// Hybrid splits by direction: backward reads the captured index, forward
// re-derives — both element-identical to a full eager capture.
func TestHybridSplitsByDirection(t *testing.T) {
	db, _ := openZipf(t)
	eager, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := microQuery(db).Run(core.CaptureOptions{Strategy: core.StrategyHybrid, Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if got := hybrid.TraceStrategy("zipf", core.TraceBackward); got != core.StrategyEager {
		t.Fatalf("hybrid backward path = %v, want eager", got)
	}
	if got := hybrid.TraceStrategy("zipf", core.TraceForward); got != core.StrategyLazy {
		t.Fatalf("hybrid forward path = %v, want lazy", got)
	}
	want, _ := eager.Backward("zipf", []core.Rid{1})
	got, err := hybrid.Backward("zipf", []core.Rid{1})
	if err != nil || !reflect.DeepEqual(want, got) {
		t.Fatalf("hybrid backward = %v (%v), want %v", got, err, want)
	}
	wantFw, _ := eager.Forward("zipf", []core.Rid{7})
	gotFw, err := hybrid.Forward("zipf", []core.Rid{7})
	if err != nil || !reflect.DeepEqual(wantFw, gotFw) {
		t.Fatalf("hybrid forward = %v (%v), want %v", gotFw, err, wantFw)
	}
}

// TraceWith forces a per-trace path: lazy works on any plan-carrying result,
// eager demands the captured index, hybrid is not a trace path.
func TestTraceWithForcedPaths(t *testing.T) {
	db, _ := openZipf(t)
	eager, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := microQuery(db).Run(core.CaptureOptions{Strategy: core.StrategyLazy})
	if err != nil {
		t.Fatal(err)
	}

	// Forced lazy on an eager result matches the index answer.
	want, _ := eager.Backward("zipf", []core.Rid{2})
	res, err := db.Query().
		Trace(eager, core.TraceBackward, "zipf", core.Rids(2)).
		TraceWith(core.StrategyLazy).
		Run(core.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != len(want) {
		t.Fatalf("forced-lazy trace rows = %d, want %d", res.Out.N, len(want))
	}

	// Forced eager on a capture-free result is a structured Invalid.
	_, err = db.Query().
		Trace(lazy, core.TraceBackward, "zipf", core.Rids(0)).
		TraceWith(core.StrategyEager).
		Run(core.CaptureOptions{})
	if serr.KindOf(err) != serr.Invalid {
		t.Fatalf("forced eager on lazy result: err = %v, want Invalid", err)
	}

	// Hybrid is a capture-time split, not a per-trace path.
	_, err = db.Query().
		Trace(eager, core.TraceBackward, "zipf", core.Rids(0)).
		TraceWith(core.StrategyHybrid).
		Run(core.CaptureOptions{})
	if serr.KindOf(err) != serr.Invalid {
		t.Fatalf("forced hybrid: err = %v, want Invalid", err)
	}
}

// The unified Result.Trace entry point agrees with the deprecated wrappers.
func TestUnifiedSeedMatchesWrappers(t *testing.T) {
	db, _ := openZipf(t)
	res, err := microQuery(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Backward("zipf", []core.Rid{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Trace(core.TraceBackward, "zipf", core.Rids(0, 3))
	if err != nil || !reflect.DeepEqual(want, got) {
		t.Fatalf("Trace(Rids) = %v (%v), want %v", got, err, want)
	}
	pred := expr.GeE(expr.C("cnt"), expr.I(1))
	gotP, err := res.Trace(core.TraceBackward, "zipf", core.Where(pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) == 0 {
		t.Fatal("predicate seed selected nothing")
	}
}
