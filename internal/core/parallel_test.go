package core_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"smoke/internal/core"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/tpch"
)

// openTPCH registers the TPC-H relations on a DB opened with the given
// options.
func openTPCH(t *testing.T, opts ...core.Option) (*core.DB, *tpch.DB) {
	t.Helper()
	data := tpch.Generate(0.002, 42)
	db := core.Open(opts...)
	db.Register(data.Nation)
	db.Register(data.Customer)
	db.Register(data.Orders)
	db.Register(data.Lineitem)
	return db, data
}

func q3(db *core.DB) *core.Query {
	cutoff := int64(9204) // 1995-03-15
	return db.Query().
		From("customer", expr.EqE(expr.C("c_mktsegment"), expr.S("BUILDING"))).
		Join("orders", expr.LtE(expr.C("o_orderdate"), expr.I(cutoff)), "customer", "c_custkey", "o_custkey").
		Join("lineitem", expr.GtE(expr.C("l_shipdate"), expr.I(cutoff)), "orders", "o_orderkey", "l_orderkey").
		GroupBy("o_orderkey").
		Agg(ops.Sum, expr.C("l_quantity"), "qty")
}

func q1(db *core.DB) *core.Query {
	return db.Query().
		From("lineitem", expr.LtE(expr.C("l_shipdate"), expr.I(10561))).
		GroupBy("l_returnflag", "l_linestatus").
		Agg(ops.Count, nil, "cnt").
		Agg(ops.Sum, expr.C("l_quantity"), "sum_qty")
}

// sameLineageAnswers requires every backward and forward lineage query over
// the result to return element-for-element identical answers.
func sameLineageAnswers(t *testing.T, tag, table string, got, want *core.Result, baseN int) {
	t.Helper()
	for o := 0; o < want.Out.N; o++ {
		w, errW := want.Backward(table, []core.Rid{core.Rid(o)})
		g, errG := got.Backward(table, []core.Rid{core.Rid(o)})
		if (errW == nil) != (errG == nil) {
			t.Fatalf("%s: backward(%s, %d) error mismatch: %v vs %v", tag, table, o, errG, errW)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: backward(%s, %d) = %d rids, want %d", tag, table, o, len(g), len(w))
		}
	}
	in := make([]core.Rid, baseN)
	for i := range in {
		in[i] = core.Rid(i)
	}
	w, errW := want.Forward(table, in)
	g, errG := got.Forward(table, in)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("%s: forward(%s) error mismatch: %v vs %v", tag, table, errG, errW)
	}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: forward(%s) differs (%d vs %d rids)", tag, table, len(g), len(w))
	}
}

// TestWorkersLineageParity is the acceptance test for the morsel-parallel
// engine: for single-table and join queries, under Inject and Defer,
// workers=N lineage (backward and forward) must deep-equal workers=1.
func TestWorkersLineageParity(t *testing.T) {
	db, data := openTPCH(t)
	for _, mode := range []ops.CaptureMode{ops.Inject, ops.Defer} {
		for _, workers := range []int{2, 4, 8} {
			serial1, err := q1(db).Run(core.CaptureOptions{Mode: mode, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par1, err := q1(db).Run(core.CaptureOptions{Mode: mode, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("q1 mode=%v w=%d", mode, workers)
			if par1.Out.N != serial1.Out.N {
				t.Fatalf("%s: %d groups, want %d", tag, par1.Out.N, serial1.Out.N)
			}
			sameLineageAnswers(t, tag, "lineitem", par1, serial1, data.Lineitem.N)

			serial3, err := q3(db).Run(core.CaptureOptions{Mode: mode, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par3, err := q3(db).Run(core.CaptureOptions{Mode: mode, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			tag = fmt.Sprintf("q3 mode=%v w=%d", mode, workers)
			if par3.Out.N != serial3.Out.N {
				t.Fatalf("%s: %d groups, want %d", tag, par3.Out.N, serial3.Out.N)
			}
			sameLineageAnswers(t, tag, "lineitem", par3, serial3, data.Lineitem.N)
			sameLineageAnswers(t, tag, "orders", par3, serial3, data.Orders.N)
			sameLineageAnswers(t, tag, "customer", par3, serial3, data.Customer.N)
		}
	}
}

// TestParallelZeroMatchFilter: a filter matching no rows must aggregate
// nothing under parallelism — the regression where nil OutRids meant "all
// rows" to HashAgg returned full-table groups at Parallelism > 1.
func TestParallelZeroMatchFilter(t *testing.T) {
	db, _ := openTPCH(t, core.WithWorkers(4))
	q := func() *core.Query {
		return db.Query().
			From("lineitem", expr.LtE(expr.C("l_quantity"), expr.F(-1))).
			GroupBy("l_returnflag").
			Agg(ops.Count, nil, "c")
	}
	for _, par := range []int{1, 4} {
		res, err := q().Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if res.Out.N != 0 {
			t.Fatalf("parallelism=%d: zero-match filter produced %d groups", par, res.Out.N)
		}
	}
}

// TestCloseReleasesPool: queries after Close still answer correctly (they
// fall back to inline execution).
func TestCloseReleasesPool(t *testing.T) {
	db, _ := openTPCH(t, core.WithWorkers(4))
	before, err := q1(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	db.Close() // idempotent
	after, err := q1(db).Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if after.Out.N != before.Out.N {
		t.Fatalf("post-Close groups %d, want %d", after.Out.N, before.Out.N)
	}
	core.Open().Close() // never-parallel DB

	// A Parallelism override on a closed, never-parallel DB must not
	// resurrect a pool; the query still answers (serially).
	lazy, _ := openTPCH(t)
	lazy.Close()
	res, err := q1(lazy).Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != before.Out.N {
		t.Fatalf("closed-DB override groups %d, want %d", res.Out.N, before.Out.N)
	}
}

// TestConcurrentQueriesSharedDB hammers one shared DB with concurrent
// Query().Run() calls (mixed shapes and modes) racing against Register of
// unrelated relations — the -race run is the assertion that DB, Catalog,
// and the shared worker pool are concurrency-safe; results are also checked
// against serial references.
func TestConcurrentQueriesSharedDB(t *testing.T) {
	db, data := openTPCH(t, core.WithWorkers(4))
	refQ1, err := q1(db).Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	refQ3, err := q3(db).Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const iters = 6
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				mode := ops.Inject
				if (g+it)%2 == 1 {
					mode = ops.Defer
				}
				switch g % 3 {
				case 0: // single-table aggregation
					res, err := q1(db).Run(core.CaptureOptions{Mode: mode})
					if err != nil {
						errs <- err
						return
					}
					if res.Out.N != refQ1.Out.N {
						errs <- fmt.Errorf("q1 groups %d, want %d", res.Out.N, refQ1.Out.N)
						return
					}
					b, _ := res.Backward("lineitem", []core.Rid{0})
					w, _ := refQ1.Backward("lineitem", []core.Rid{0})
					if !reflect.DeepEqual(b, w) {
						errs <- fmt.Errorf("q1 lineage diverged under concurrency")
						return
					}
				case 1: // join block
					res, err := q3(db).Run(core.CaptureOptions{Mode: mode})
					if err != nil {
						errs <- err
						return
					}
					if res.Out.N != refQ3.Out.N {
						errs <- fmt.Errorf("q3 groups %d, want %d", res.Out.N, refQ3.Out.N)
						return
					}
				case 2: // catalog writes race with running queries
					rel := datagen.Zipf(fmt.Sprintf("scratch_%d_%d", g, it), 1.0, 500, 5, int64(g))
					db.Register(rel)
					res, err := db.Query().From(rel.Name, nil).
						GroupBy("z").Agg(ops.Count, nil, "c").
						Run(core.CaptureOptions{Mode: ops.Inject})
					if err != nil {
						errs <- err
						return
					}
					if res.Out.N != 5 {
						errs <- fmt.Errorf("scratch groups %d, want 5", res.Out.N)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_ = data
}
