package core

import (
	"strings"

	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// This file is the trace-strategy layer: the cost-based choice between eager
// lineage capture (the paper's §3 instrumentation), lazy re-execution with
// the trace seed pushed down as a predicate (Lin et al.-style
// predicate-pushdown lineage), and a hybrid of the two — surfaced through
// CaptureOptions.Strategy and the unified Seed/TraceDir trace API.
//
// The strategies answer the same question — "which base rows are behind
// these output rows?" — with different cost profiles:
//
//   - Eager pays at capture time (every base query builds rid indexes) and
//     answers traces by index reads. Wins when traces are frequent or the
//     plan is expensive to re-run.
//   - Lazy pays nothing at capture time: the result keeps only its optimized
//     plan and base snapshots, and a trace re-executes the plan with
//     targeted capture — or, when the seed translates to a predicate over
//     group keys of a single-scan aggregation, collapses to one filtered
//     scan of the base relation (the optimizer's trace-rewrite seam). Wins
//     when traces are rare or selective.
//   - Hybrid captures the backward direction eagerly (the dominant,
//     cheap-to-store direction — linked brushing, drill-down) and answers
//     forward traces by re-execution. Wins on multi-input plans where
//     re-execution replays a join but forward traces stay occasional.
//   - Auto picks per query from the optimized plan shape (plan.ProfileTrace)
//     and the DB's observed trace rate; see resolveStrategy.

// Strategy selects how a query's result provides lineage.
type Strategy uint8

const (
	// StrategyDefault preserves the pre-strategy contract: Mode alone decides.
	// A capturing Mode (Inject/Defer) resolves to StrategyEager; Mode None
	// resolves to StrategyLazy — the capture-free result keeps its plan and
	// answers traces by re-execution instead of erroring.
	StrategyDefault Strategy = iota
	// StrategyEager captures lineage indexes during execution; traces read
	// them in place. Requires a capturing Mode.
	StrategyEager
	// StrategyLazy captures nothing and answers traces by re-executing the
	// stored optimized plan with the seed pushed down as a predicate.
	// Conflicts with a capturing Mode and with capture-time options
	// (Dirs/TableDirs and the §4.2 push-downs): they configure an
	// instrumentation that never runs.
	StrategyLazy
	// StrategyHybrid captures backward indexes eagerly and answers forward
	// traces lazily by re-execution. Direction options conflict for the same
	// reason as Lazy: the split IS the strategy.
	StrategyHybrid
	// StrategyAuto chooses Eager, Lazy, or Hybrid per query from plan shape
	// and the observed trace rate.
	StrategyAuto
)

// String returns the wire spelling.
func (s Strategy) String() string {
	switch s {
	case StrategyEager:
		return "eager"
	case StrategyLazy:
		return "lazy"
	case StrategyHybrid:
		return "hybrid"
	case StrategyAuto:
		return "auto"
	}
	return "default"
}

// ParseStrategy maps the wire spelling to a Strategy; empty means Default.
// Unknown spellings are a structured Invalid (HTTP 400).
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return StrategyDefault, nil
	case "eager":
		return StrategyEager, nil
	case "lazy":
		return StrategyLazy, nil
	case "hybrid":
		return StrategyHybrid, nil
	case "auto":
		return StrategyAuto, nil
	}
	return StrategyDefault, serr.New(serr.Invalid,
		"core: unknown capture strategy %q (want eager, lazy, hybrid, or auto)", s)
}

// TraceDir is a lineage direction for the unified trace API.
type TraceDir uint8

const (
	// TraceBackward asks which base rows produced the seeded output rows.
	TraceBackward TraceDir = iota + 1
	// TraceForward asks which output rows depend on the seeded base rows.
	TraceForward
)

// String names the direction.
func (d TraceDir) String() string {
	if d == TraceForward {
		return "forward"
	}
	return "backward"
}

// Seed is a unified trace seed: explicit rids (Rids), a predicate (Where),
// or — the zero value — everything. For TraceBackward the rids/predicate
// address the result's output rows; for TraceForward the base relation's
// rows.
type Seed struct {
	rids     []Rid
	explicit bool
	pred     expr.Expr
}

// Rids seeds a trace with an explicit rid set. Rids() with no arguments is
// an explicit empty seed set (an empty trace), not "everything" — the zero
// Seed is.
func Rids(rids ...Rid) Seed { return Seed{rids: rids, explicit: true} }

// Where seeds a trace with a predicate; Where(nil) seeds everything.
func Where(pred expr.Expr) Seed { return Seed{pred: pred} }

// ridSeed wraps a caller-supplied rid slice in the deprecated wrappers'
// convention, where the nil/empty distinction is level-specific.
func ridSeed(rids []Rid, explicit bool) Seed {
	return Seed{rids: rids, explicit: explicit}
}

// ridsForExec renders the seed in the plan convention: nil means "not
// rid-seeded" (predicate or everything); an explicit seed set is non-nil
// even when empty.
func (s Seed) ridsForExec() []Rid {
	if !s.explicit {
		return nil
	}
	if s.rids == nil {
		return []Rid{}
	}
	return s.rids
}

// validateStrategy rejects option combinations that would silently disable
// each other — a capturing mode on a capture-free strategy, capture
// direction or push-down options on a strategy that overrides them. All
// rejections are structured Invalid (HTTP 400).
func (o CaptureOptions) validateStrategy() error {
	pushdown := o.PushdownFilter != nil || o.PartitionBy != nil || o.Cube != nil || o.CountsByKey != nil
	switch o.Strategy {
	case StrategyDefault, StrategyAuto:
		return nil
	case StrategyEager:
		if o.Mode == ops.None {
			return serr.New(serr.Invalid,
				"core: Strategy Eager requires a capturing Mode (Inject or Defer)")
		}
	case StrategyLazy:
		if o.Mode != ops.None {
			return serr.New(serr.Invalid,
				"core: Strategy Lazy is capture-free and conflicts with a capturing Mode")
		}
		if o.Dirs != 0 || o.TableDirs != nil {
			return serr.New(serr.Invalid,
				"core: capture directions conflict with Strategy Lazy (nothing is captured)")
		}
		if pushdown {
			return serr.New(serr.Invalid,
				"core: capture push-down options conflict with Strategy Lazy (nothing is captured)")
		}
	case StrategyHybrid:
		if o.Dirs != 0 || o.TableDirs != nil {
			return serr.New(serr.Invalid,
				"core: Strategy Hybrid chooses capture directions itself; Dirs/TableDirs conflict")
		}
		if pushdown {
			return serr.New(serr.Invalid,
				"core: capture push-down options conflict with Strategy Hybrid")
		}
	default:
		return serr.New(serr.Invalid, "core: unknown capture strategy")
	}
	return nil
}

// autoTraceRateNum/Den: Auto treats the workload as trace-sparse while
// observed traces stay under 1/10th of base runs — the regime where the
// lazy bench shows capture-free queries winning end-to-end.
const (
	autoTraceRateNum = 1
	autoTraceRateDen = 10
)

// resolveStrategy normalizes the requested strategy against the optimized
// plan and the DB's observed workload into one of Eager, Lazy, or Hybrid.
//
// Auto's cost rules, cheapest-first for the trace-sparse case:
//   - explicit Dirs/TableDirs pin Eager (the caller configured a capture);
//   - a trace-heavy history (observed traces >= 1/10 of runs) picks Eager —
//     re-execution would be paid too often;
//   - a multi-input plan (join/union) picks Hybrid: backward stays an index
//     read, and only occasional forward traces replay the join;
//   - anything else picks Lazy — single-scan aggregations re-trace as one
//     filtered scan when the seed is key-shaped (plan.ProfileTrace).
func resolveStrategy(db *DB, opts CaptureOptions, optimized plan.Node) Strategy {
	switch opts.Strategy {
	case StrategyEager:
		return StrategyEager
	case StrategyLazy:
		return StrategyLazy
	case StrategyHybrid:
		return StrategyHybrid
	case StrategyAuto:
		if opts.Dirs != 0 || opts.TableDirs != nil {
			return StrategyEager
		}
		runs, traces := db.runs.Load(), db.traces.Load()
		if runs > 0 && traces*autoTraceRateDen >= runs*autoTraceRateNum {
			return StrategyEager
		}
		if plan.ProfileTrace(optimized).MultiInput {
			return StrategyHybrid
		}
		return StrategyLazy
	}
	if opts.Mode == ops.None {
		return StrategyLazy
	}
	return StrategyEager
}

// TraceRate reports the DB's observed workload mix: base-query runs vs
// lineage traces asked, the signal Strategy Auto costs against.
func (db *DB) TraceRate() (runs, traces uint64) {
	return db.runs.Load(), db.traces.Load()
}

// Strategy reports how the result provides lineage: StrategyEager (captured
// indexes), StrategyLazy (stored plan, re-executed per trace), or
// StrategyHybrid (eager backward, lazy forward). Results from before the
// strategy knob (restored snapshots, consuming results) report Eager.
func (r *Result) Strategy() Strategy {
	if r.strategy == StrategyDefault {
		return StrategyEager
	}
	return r.strategy
}

// TraceStrategy reports how a trace of table in the given direction would be
// answered: StrategyEager when the captured index exists, StrategyLazy when
// the result re-executes its stored plan, and StrategyDefault when neither
// path exists (the trace will fail with the capture's structured error).
func (r *Result) TraceStrategy(table string, dir TraceDir) Strategy {
	if dir == TraceForward {
		if r.capture != nil && r.capture.HasForward(table) {
			return StrategyEager
		}
	} else if r.bwPart != nil || (r.capture != nil && r.capture.HasBackward(table)) {
		return StrategyEager
	}
	if r.lazyOK() && r.BaseRelation(table) != nil {
		return StrategyLazy
	}
	return StrategyDefault
}

// lazyOK reports whether the result may answer a missing-index trace by
// re-execution. Only lazy/hybrid results qualify: an eager result with a
// pruned capture direction (TableDirs) made an explicit promise NOT to
// answer that direction, and silently re-executing would repeal it.
func (r *Result) lazyOK() bool {
	return r.plan != nil && (r.strategy == StrategyLazy || r.strategy == StrategyHybrid)
}

// seedKeyPred translates a single explicit backward seed rid into an
// equivalent predicate over the source's group-by keys, read from the output
// row itself. The translated trace qualifies for the optimizer's
// scan-and-filter rewrite: one filtered scan of the base relation instead of
// re-executing the aggregation. Only a single seed translates — a multi-rid
// seed list expands per-seed rid lists in seed order, which a predicate scan
// cannot reproduce element-identically — and only when the plan root is a
// group-by whose keys are all present in the output schema.
func (r *Result) seedKeyPred(rids []Rid) (expr.Expr, bool) {
	if len(rids) != 1 || r.Out == nil || r.plan == nil {
		return nil, false
	}
	gb, ok := r.plan.(plan.GroupBy)
	if !ok || len(gb.Keys) == 0 {
		return nil, false
	}
	o := int(rids[0])
	if o < 0 || o >= r.Out.N {
		return nil, false
	}
	conj := make([]expr.Expr, 0, len(gb.Keys))
	for _, k := range gb.Keys {
		ci := r.Out.Schema.Col(k)
		if ci < 0 {
			return nil, false
		}
		switch r.Out.Schema[ci].Type {
		case storage.TInt:
			conj = append(conj, expr.EqE(expr.C(k), expr.I(r.Out.Int(ci, o))))
		case storage.TFloat:
			conj = append(conj, expr.EqE(expr.C(k), expr.F(r.Out.Float(ci, o))))
		case storage.TString:
			conj = append(conj, expr.EqE(expr.C(k), expr.S(r.Out.Str(ci, o))))
		default:
			return nil, false
		}
	}
	return expr.AndE(conj...), true
}

// buildTraceNode assembles the physical trace node for a trace of r. Bound
// traces read the captured indexes; lazy traces leave Bound nil so the
// optimizer may collapse them (trace-rewrite) and exec re-executes the
// stored plan with targeted capture otherwise. On the lazy path a
// single-rid backward seed is translated to its group-key predicate first —
// that is what makes the scan rewrite reachable.
func (r *Result) buildTraceNode(dir TraceDir, table string, rel *storage.Relation, seed Seed, lazy, distinct bool) plan.Node {
	rids, pred := seed.ridsForExec(), seed.pred
	var bound *plan.BoundTrace
	if lazy {
		if dir == TraceBackward {
			if p, ok := r.seedKeyPred(rids); ok {
				pred, rids = p, nil
			}
		}
	} else {
		bound = r.bound()
	}
	if dir == TraceForward {
		return plan.Forward{
			Source: r.plan, Table: table, Rel: rel,
			SeedRids: rids, SeedPred: pred, Distinct: distinct, Bound: bound,
		}
	}
	return plan.Backward{
		Source: r.plan, Table: table, Rel: rel,
		SeedRids: rids, SeedPred: pred, Distinct: distinct, Bound: bound,
	}
}

// trace is the unified Result-level trace evaluator behind
// Backward/Forward/Trace and their Distinct variants.
func (r *Result) trace(dir TraceDir, table string, seed Seed, distinct bool) ([]Rid, error) {
	if r.db != nil {
		r.db.traces.Add(1)
	}
	lazy := r.TraceStrategy(table, dir) == StrategyLazy
	if !lazy && seed.pred == nil && seed.explicit {
		// The classic rid-seeded index read keeps its direct path (including
		// data-skipping partitioned indexes, which only this path serves).
		rids := seed.rids
		if dir == TraceBackward {
			if r.bwPart != nil {
				var all []Rid
				for _, o := range rids {
					all = append(all, r.bwPart.All(int(o))...)
				}
				if distinct {
					all = lineage.Dedup(all)
				}
				return all, nil
			}
			if distinct {
				return r.capture.BackwardDistinct(table, rids)
			}
			return r.capture.Backward(table, rids)
		}
		if distinct {
			return r.capture.ForwardDistinct(table, rids)
		}
		return r.capture.Forward(table, rids)
	}
	rel := r.BaseRelation(table)
	if rel == nil {
		return nil, serr.New(serr.NotFound, "core: result has no captured base relation %q", table)
	}
	node := r.buildTraceNode(dir, table, rel, seed, lazy, distinct)
	if lazy {
		node = plan.OptimizeNoTrace(node, plan.Opts{Catalog: r.db.cat})
	}
	opts := CaptureOptions{Params: r.params}
	eopts := exec.PlanOpts{Params: r.params}
	eopts.Workers, eopts.Pool = opts.workers(r.db)
	return exec.TraceRids(node, eopts)
}

// Trace answers a rid-level lineage query in the given direction — the
// unified form of Backward/Forward. Captured indexes answer it in place;
// lazy and hybrid results re-execute the stored plan (TraceStrategy reports
// which path a given trace takes). Duplicates are preserved
// (transformational semantics); see TraceDistinct for set semantics.
func (r *Result) Trace(dir TraceDir, table string, seed Seed) ([]Rid, error) {
	return r.trace(dir, table, seed, false)
}

// TraceDistinct is Trace with set semantics (which-provenance/highlighting).
func (r *Result) TraceDistinct(dir TraceDir, table string, seed Seed) ([]Rid, error) {
	return r.trace(dir, table, seed, true)
}
