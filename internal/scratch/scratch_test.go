package scratch

import "testing"

func TestBuffersHaveRequestedLength(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 512, 4096, 100_000} {
		w := Words(n)
		if len(w) != n {
			t.Fatalf("Words(%d) len = %d", n, len(w))
		}
		PutWords(w)
		r := Rids(n)
		if len(r) != n {
			t.Fatalf("Rids(%d) len = %d", n, len(r))
		}
		PutRids(r)
		iv := Ints(n)
		if len(iv) != n {
			t.Fatalf("Ints(%d) len = %d", n, len(iv))
		}
		PutInts(iv)
	}
}

func TestPutRejectsOddCapacities(t *testing.T) {
	// Non-power-of-two capacities must not enter the pool: a later Get would
	// return a buffer from the wrong size class. Put must simply drop them.
	PutRids(make([]int32, 100)) // cap 100, not a power of two
	PutRids(nil)
	r := Rids(64)
	if len(r) != 64 {
		t.Fatalf("len = %d after odd-capacity Put", len(r))
	}
	PutRids(r)
}

func TestReuseRoundTrip(t *testing.T) {
	// A returned buffer may be reused by the next same-class request; either
	// way the request contract (exact length, usable contents) must hold.
	a := Rids(1000)
	for i := range a {
		a[i] = int32(i)
	}
	PutRids(a)
	b := Rids(900)
	if len(b) != 900 {
		t.Fatalf("len = %d", len(b))
	}
	for i := range b {
		b[i] = -7 // must be writable over its whole length
	}
	PutRids(b)
}

// BenchmarkPooledMorselScratch pins the point of the pool: steady-state
// morsel kernels reacquire their scratch with zero allocations.
func BenchmarkPooledMorselScratch(b *testing.B) {
	b.ReportAllocs()
	const morsel = 4096
	// Warm the classes once so steady state is measured.
	PutWords(Words(morsel / 64))
	PutRids(Rids(morsel))
	PutInts(Ints(morsel))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := Words(morsel / 64)
		r := Rids(morsel)
		iv := Ints(morsel)
		w[0], r[0], iv[0] = 1, 1, 1
		PutWords(w)
		PutRids(r)
		PutInts(iv)
	}
}

func BenchmarkUnpooledMorselScratch(b *testing.B) {
	b.ReportAllocs()
	const morsel = 4096
	for i := 0; i < b.N; i++ {
		w := make([]uint64, morsel/64)
		r := make([]int32, morsel)
		iv := make([]int64, morsel)
		w[0], r[0], iv[0] = 1, 1, 1
	}
}
