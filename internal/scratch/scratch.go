// Package scratch provides pooled, size-classed transient buffers for the
// engine's morsel kernels. The hot paths — selection bitmaps, group-by batch
// probes, encoded-trace expansion — need short-lived per-partition scratch
// whose lifetime ends inside one kernel call; allocating it per morsel is
// what made workers=4 lose to workers=1 on allocation-bound workloads.
// Buffers are recycled through sync.Pool in power-of-two size classes, so a
// steady-state bench loop reaches zero allocations per morsel.
//
// Contract: a Put'd buffer must not be referenced afterwards, and buffers
// that escape into results (lineage arrays, output relations) are never
// pooled — only scratch whose contents are fully consumed before the kernel
// returns.
package scratch

import (
	"math/bits"
	"sync"
)

// size classes: 1<<6 .. 1<<24 elements; requests outside the classed range
// allocate directly and are dropped on Put.
const (
	minClassBits = 6
	maxClassBits = 24
)

func classFor(n int) int {
	if n <= 0 {
		n = 1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < minClassBits {
		c = minClassBits
	}
	return c
}

type pools struct {
	byClass [maxClassBits + 1]sync.Pool
}

func (p *pools) get(n int) (buf any, class int, ok bool) {
	class = classFor(n)
	if class > maxClassBits {
		return nil, class, false
	}
	return p.byClass[class].Get(), class, true
}

var (
	wordPools pools // []uint64
	ridPools  pools // []int32
	intPools  pools // []int64
)

// Words returns a []uint64 with length exactly n. Contents are undefined;
// callers must fully overwrite (bitmap kernels write every word under
// KernSet).
func Words(n int) []uint64 {
	if v, class, ok := wordPools.get(n); ok {
		if v != nil {
			return v.([]uint64)[:n]
		}
		return make([]uint64, n, 1<<class)
	}
	return make([]uint64, n)
}

// putClass returns the pool class for a buffer capacity, or -1 when the
// buffer must be dropped: only exact power-of-two capacities inside the
// classed range are readmitted (anything else would poison its size class).
// The range checks run before the shift so a zero capacity cannot produce a
// negative shift.
func putClass(capacity int) int {
	c := bits.Len(uint(capacity)) - 1
	if c < minClassBits || c > maxClassBits || capacity != 1<<c {
		return -1
	}
	return c
}

// PutWords recycles a buffer obtained from Words.
func PutWords(b []uint64) {
	c := putClass(cap(b))
	if c < 0 {
		return
	}
	wordPools.byClass[c].Put(b[:cap(b)]) //nolint:staticcheck // slice is heap-allocated
}

// Rids returns an []int32 scratch buffer with length exactly n (rid and
// group-slot batches). Contents are undefined.
func Rids(n int) []int32 {
	if v, class, ok := ridPools.get(n); ok {
		if v != nil {
			return v.([]int32)[:n]
		}
		return make([]int32, n, 1<<class)
	}
	return make([]int32, n)
}

// PutRids recycles a buffer obtained from Rids.
func PutRids(b []int32) {
	c := putClass(cap(b))
	if c < 0 {
		return
	}
	ridPools.byClass[c].Put(b[:cap(b)]) //nolint:staticcheck
}

// Ints returns an []int64 scratch buffer with length exactly n (group-by key
// batches). Contents are undefined.
func Ints(n int) []int64 {
	if v, class, ok := intPools.get(n); ok {
		if v != nil {
			return v.([]int64)[:n]
		}
		return make([]int64, n, 1<<class)
	}
	return make([]int64, n)
}

// PutInts recycles a buffer obtained from Ints.
func PutInts(b []int64) {
	c := putClass(cap(b))
	if c < 0 {
		return
	}
	intPools.byClass[c].Put(b[:cap(b)]) //nolint:staticcheck
}
