// Package datagen generates the synthetic microbenchmark tables of §5:
// zipf_{θ,n,g}(id, z, v) where z follows a zipfian distribution with skew θ
// over g distinct values (groups) and v is uniform in [0,100), plus the gids
// dimension table used by the pk-fk join microbenchmark. Tuples are small by
// design, to emphasize worst-case lineage overheads.
package datagen

import (
	"math"
	"math/rand"

	"smoke/internal/storage"
)

// ZipfSchema is the schema of the microbenchmark fact table.
func ZipfSchema() storage.Schema {
	return storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "z", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}
}

// zipfCDF precomputes the cumulative distribution of P(k) ∝ 1/k^θ over
// k ∈ [1, g]. θ=0 degenerates to uniform.
func zipfCDF(theta float64, g int) []float64 {
	cdf := make([]float64, g)
	sum := 0.0
	for k := 1; k <= g; k++ {
		sum += 1.0 / math.Pow(float64(k), theta)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[g-1] = 1.0
	return cdf
}

// sampleCDF draws a value in [1, len(cdf)] by binary search over the CDF.
func sampleCDF(cdf []float64, u float64) int64 {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}

// Zipf generates zipf_{theta,n,g}: n rows with id = row number, z zipfian in
// [1, g], v uniform in [0, 100). Deterministic for a given seed.
func Zipf(name string, theta float64, n, g int, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	cdf := zipfCDF(theta, g)
	rel := storage.NewRelation(name, ZipfSchema(), n)
	ids := rel.Cols[0].Ints
	zs := rel.Cols[1].Ints
	vs := rel.Cols[2].Floats
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		zs[i] = sampleCDF(cdf, rng.Float64())
		vs[i] = rng.Float64() * 100
	}
	return rel
}

// GidsSchema is the schema of the join dimension table.
func GidsSchema() storage.Schema {
	return storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "payload", Type: storage.TFloat},
	}
}

// Gids generates the dimension table gids(id, payload) with ids 1..g, the
// primary-key side of the pk-fk join microbenchmark (§6.1.2).
func Gids(name string, g int, seed int64) *storage.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := storage.NewRelation(name, GidsSchema(), g)
	for i := 0; i < g; i++ {
		rel.Cols[0].Ints[i] = int64(i + 1)
		rel.Cols[1].Floats[i] = rng.Float64()
	}
	return rel
}

// GroupCounts returns exact per-value counts of an integer column whose
// values lie in [1, g]: counts[k-1] = |{rid : col[rid] = k}|. This supplies
// the "cardinality statistics" used by the Smoke-I+TC variants to preallocate
// lineage indexes.
func GroupCounts(rel *storage.Relation, col string, g int) []int32 {
	c := rel.Schema.MustCol(col)
	counts := make([]int32, g)
	for _, v := range rel.Cols[c].Ints {
		counts[v-1]++
	}
	return counts
}
