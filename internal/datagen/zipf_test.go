package datagen

import (
	"math"
	"reflect"
	"testing"
)

func TestZipfShape(t *testing.T) {
	rel := Zipf("zipf", 1.0, 10000, 100, 42)
	if rel.N != 10000 {
		t.Fatalf("N = %d", rel.N)
	}
	if rel.Schema.Col("z") != 1 || rel.Schema.Col("v") != 2 {
		t.Fatal("schema mismatch")
	}
	for i := 0; i < rel.N; i++ {
		z := rel.Int(1, i)
		if z < 1 || z > 100 {
			t.Fatalf("z out of range: %d", z)
		}
		v := rel.Float(2, i)
		if v < 0 || v >= 100 {
			t.Fatalf("v out of range: %v", v)
		}
		if rel.Int(0, i) != int64(i) {
			t.Fatalf("id[%d] = %d", i, rel.Int(0, i))
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := Zipf("a", 1.0, 1000, 50, 7)
	b := Zipf("b", 1.0, 1000, 50, 7)
	if !reflect.DeepEqual(a.Cols[1].Ints, b.Cols[1].Ints) {
		t.Fatal("same seed must generate identical z columns")
	}
	c := Zipf("c", 1.0, 1000, 50, 8)
	if reflect.DeepEqual(a.Cols[1].Ints, c.Cols[1].Ints) {
		t.Fatal("different seeds should differ")
	}
}

func TestZipfSkew(t *testing.T) {
	// With θ=1, value 1 must be sampled far more often than value 50;
	// with θ=0 the distribution is uniform.
	n, g := 100000, 50
	skewed := Zipf("s", 1.0, n, g, 1)
	counts := GroupCounts(skewed, "z", g)
	if counts[0] < 4*counts[g-1] {
		t.Errorf("θ=1: count(z=1)=%d not ≫ count(z=%d)=%d", counts[0], g, counts[g-1])
	}
	uniform := Zipf("u", 0.0, n, g, 1)
	ucounts := GroupCounts(uniform, "z", g)
	mean := float64(n) / float64(g)
	for k, c := range ucounts {
		if math.Abs(float64(c)-mean) > mean*0.25 {
			t.Errorf("θ=0: count(z=%d)=%d deviates from uniform mean %.0f", k+1, c, mean)
		}
	}
}

func TestZipfTheoreticalFrequency(t *testing.T) {
	// For θ=1, P(1)/P(2) = 2; empirical ratio should be close.
	n := 200000
	rel := Zipf("z", 1.0, n, 100, 3)
	counts := GroupCounts(rel, "z", 100)
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("P(1)/P(2) = %.2f, want ≈ 2", ratio)
	}
}

func TestGroupCountsSumToN(t *testing.T) {
	rel := Zipf("z", 0.8, 5000, 20, 11)
	counts := GroupCounts(rel, "z", 20)
	sum := 0
	for _, c := range counts {
		sum += int(c)
	}
	if sum != rel.N {
		t.Fatalf("counts sum to %d, want %d", sum, rel.N)
	}
}

func TestGids(t *testing.T) {
	rel := Gids("gids", 100, 5)
	if rel.N != 100 {
		t.Fatalf("N = %d", rel.N)
	}
	for i := 0; i < rel.N; i++ {
		if rel.Int(0, i) != int64(i+1) {
			t.Fatalf("id[%d] = %d, want %d", i, rel.Int(0, i), i+1)
		}
	}
}

func TestSampleCDFBoundaries(t *testing.T) {
	cdf := zipfCDF(1.0, 3)
	if got := sampleCDF(cdf, 0.0); got != 1 {
		t.Errorf("sample at u=0 → %d, want 1", got)
	}
	if got := sampleCDF(cdf, 1.0); got != 3 {
		t.Errorf("sample at u=1 → %d, want 3", got)
	}
	if cdf[2] != 1.0 {
		t.Errorf("CDF must end at 1.0, got %v", cdf[2])
	}
}
