package baselines

import (
	"smoke/internal/btree"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// EdgeSink receives one lineage edge per derivation. The *interface* is the
// point: Phys-Mem and Phys-Bdb pay a dynamic dispatch for every edge, which
// is exactly the per-tuple API cost the tight-integration principle (P1)
// eliminates. The paper measures this alone at up to 2× operator slowdown.
type EdgeSink interface {
	// Emit records that output record out derives from input record in.
	Emit(out, in Rid)
}

// MemSink (Phys-Mem) stores edges in the same rid-based structures Smoke
// uses, so the only difference from Smoke-I is the dispatch per edge.
type MemSink struct {
	BW [][]Rid
	FW []Rid
}

// NewMemSink sizes the forward array for the input relation.
func NewMemSink(inputN int) *MemSink {
	fw := make([]Rid, inputN)
	for i := range fw {
		fw[i] = -1
	}
	return &MemSink{FW: fw}
}

// Emit implements EdgeSink.
func (s *MemSink) Emit(out, in Rid) {
	for int(out) >= len(s.BW) {
		s.BW = append(s.BW, nil)
	}
	s.BW[out] = lineage.AppendRid(s.BW[out], in)
	s.FW[in] = out
}

// Index converts the sink's contents into a Smoke backward rid index.
func (s *MemSink) Index() *lineage.RidIndex {
	ix := lineage.NewRidIndex(len(s.BW))
	for o, l := range s.BW {
		ix.SetList(o, l)
	}
	return ix
}

// BdbSink (Phys-Bdb) stores edges in a separate B-tree-backed subsystem: one
// tree per direction, keyed by output (backward) and input (forward) rid.
type BdbSink struct {
	BWTree *btree.Tree
	FWTree *btree.Tree
}

// NewBdbSink returns an empty B-tree-backed sink.
func NewBdbSink() *BdbSink {
	return &BdbSink{BWTree: btree.New(), FWTree: btree.New()}
}

// Emit implements EdgeSink.
func (s *BdbSink) Emit(out, in Rid) {
	s.BWTree.Insert(int64(out), in)
	s.FWTree.Insert(int64(in), out)
}

// Backward answers a backward lineage query through cursor reads (the
// cursor-style access the paper found faster than bulk fetch).
func (s *BdbSink) Backward(out Rid, dst []Rid) []Rid {
	for c := s.BWTree.SeekGE(int64(out)); c.Valid() && c.Key() == int64(out); c.Next() {
		dst = append(dst, c.Value())
	}
	return dst
}

// Forward answers a forward lineage query through cursor reads.
func (s *BdbSink) Forward(in Rid, dst []Rid) []Rid {
	for c := s.FWTree.SeekGE(int64(in)); c.Valid() && c.Key() == int64(in); c.Next() {
		dst = append(dst, c.Value())
	}
	return dst
}

// GroupByPhysical executes a group-by aggregation whose lineage capture goes
// through sink.Emit — one dynamic dispatch per input record. The relational
// work is identical to Smoke's baseline aggregation.
func GroupByPhysical(in *storage.Relation, spec ops.GroupBySpec, sink EdgeSink,
	params expr.Params) (ops.AggResult, error) {

	return ops.HashAgg(in, nil, spec, ops.AggOpts{
		Mode:   ops.None,
		Params: params,
		// Observe is an indirect call per row; routing it through the
		// EdgeSink interface reproduces the physical-approach API boundary.
		Observe: func(slot int32, rid Rid) { sink.Emit(slot, rid) },
	})
}
