package baselines

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
)

func microSpec() ops.GroupBySpec {
	return ops.GroupBySpec{
		Keys: []string{"z"},
		Aggs: []ops.AggSpec{
			{Fn: ops.Count, Name: "cnt"},
			{Fn: ops.Sum, Arg: expr.C("v"), Name: "sum_v"},
		},
	}
}

func sortRids(r []Rid) { sort.Slice(r, func(i, j int) bool { return r[i] < r[j] }) }

func TestLazyBackwardMatchesSmoke(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 3000, 20, 5)
	smoke, err := ops.HashAgg(rel, nil, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < smoke.Out.N; o++ {
		lazy, err := LazyBackward(rel, []string{"z"}, smoke.Out, o, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]Rid(nil), smoke.BW.List(o)...)
		sortRids(want)
		sortRids(lazy)
		if !reflect.DeepEqual(lazy, want) {
			t.Fatalf("group %d: lazy backward differs from Smoke index", o)
		}
	}
}

func TestLazyBackwardWithBaseFilter(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 7)
	filter := expr.LtE(expr.C("v"), expr.F(50))
	pred, _ := expr.CompilePred(filter, rel, nil)
	sel := ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.None})
	smoke, err := ops.HashAgg(rel, sel.OutRids, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < smoke.Out.N; o++ {
		lazy, err := LazyBackward(rel, []string{"z"}, smoke.Out, o, filter, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]Rid(nil), smoke.BW.List(o)...)
		sortRids(want)
		sortRids(lazy)
		if !reflect.DeepEqual(lazy, want) {
			t.Fatalf("group %d: filtered lazy backward differs", o)
		}
	}
}

func TestGroupByLogicalRid(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 1000, 10, 3)
	ann, err := GroupByLogical(rel, nil, microSpec(), LogicRid, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Denormalized: one annotated row per input record.
	if ann.Annotated.N != rel.N {
		t.Fatalf("annotated N = %d, want %d", ann.Annotated.N, rel.N)
	}
	// Annotated width: out columns + oid + rid.
	if len(ann.Annotated.Schema) != len(ann.Out.Schema)+2 {
		t.Fatalf("annotated width = %d", len(ann.Annotated.Schema))
	}
	// Consistency: each annotated row's z must equal its output group's z.
	zc := ann.Annotated.Schema.MustCol("z")
	oc := ann.Annotated.Schema.MustCol("oid")
	rc := ann.Annotated.Schema.MustCol("rid")
	relz := rel.Schema.MustCol("z")
	for i := 0; i < ann.Annotated.N; i++ {
		oid := ann.Annotated.Int(oc, i)
		rid := ann.Annotated.Int(rc, i)
		if ann.Annotated.Int(zc, i) != ann.Out.Int(ann.Out.Schema.MustCol("z"), int(oid)) {
			t.Fatal("annotated group key mismatch")
		}
		if rel.Int(relz, int(rid)) != ann.Annotated.Int(zc, i) {
			t.Fatal("annotated rid points at wrong input row")
		}
	}
}

func TestGroupByLogicalTup(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 500, 5, 3)
	ann, err := GroupByLogical(rel, nil, microSpec(), LogicTup, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple annotation: input columns appear with in_ prefix.
	if ann.Annotated.Schema.Col("in_z") < 0 || ann.Annotated.Schema.Col("in_v") < 0 {
		t.Fatal("tuple annotation columns missing")
	}
	vc := ann.Annotated.Schema.MustCol("in_v")
	relv := rel.Schema.MustCol("v")
	// The i-th annotated row corresponds to input row i (no filter).
	for i := 0; i < 100; i++ {
		if ann.Annotated.Float(vc, i) != rel.Float(relv, i) {
			t.Fatal("tuple annotation values wrong")
		}
	}
}

func TestGroupByLogicIdxMatchesSmoke(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 15, 9)
	smoke, err := ops.HashAgg(rel, nil, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	_, bw, fw, err := GroupByLogicIdx(rel, nil, microSpec(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fw, smoke.FW) {
		t.Fatal("Logic-Idx forward differs from Smoke")
	}
	if bw.Len() != smoke.BW.Len() {
		t.Fatal("group counts differ")
	}
	for o := 0; o < bw.Len(); o++ {
		a := append([]Rid(nil), bw.List(o)...)
		b := append([]Rid(nil), smoke.BW.List(o)...)
		sortRids(a)
		sortRids(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Logic-Idx backward differs at group %d", o)
		}
	}
}

func TestBackwardFromAnnotated(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 1000, 10, 11)
	smoke, _ := ops.HashAgg(rel, nil, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	ann, err := GroupByLogical(rel, nil, microSpec(), LogicRid, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Logical group order may differ from Smoke's; match groups by key.
	zOut := ann.Out.Schema.MustCol("z")
	for o := 0; o < ann.Out.N; o++ {
		got := BackwardFromAnnotated(&ann, Rid(o))
		// find smoke group with same key
		var want []Rid
		for so := 0; so < smoke.Out.N; so++ {
			if smoke.Out.Int(0, so) == ann.Out.Int(zOut, o) {
				want = append([]Rid(nil), smoke.BW.List(so)...)
			}
		}
		sortRids(got)
		sortRids(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("annotated-scan backward differs at group %d", o)
		}
	}
}

func TestPhysMemMatchesSmoke(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 13)
	smoke, _ := ops.HashAgg(rel, nil, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	sink := NewMemSink(rel.N)
	res, err := GroupByPhysical(rel, microSpec(), sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != smoke.Out.N {
		t.Fatal("group counts differ")
	}
	if !reflect.DeepEqual(sink.FW, smoke.FW) {
		t.Fatal("Phys-Mem forward differs")
	}
	ix := sink.Index()
	for o := 0; o < smoke.BW.Len(); o++ {
		if !reflect.DeepEqual(ix.List(o), smoke.BW.List(o)) {
			t.Fatalf("Phys-Mem backward differs at group %d", o)
		}
	}
}

func TestPhysBdbMatchesSmoke(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 1500, 8, 17)
	smoke, _ := ops.HashAgg(rel, nil, microSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	sink := NewBdbSink()
	if _, err := GroupByPhysical(rel, microSpec(), sink, nil); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < smoke.BW.Len(); o++ {
		got := sink.Backward(Rid(o), nil)
		want := append([]Rid(nil), smoke.BW.List(o)...)
		sortRids(got)
		sortRids(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Phys-Bdb backward differs at group %d", o)
		}
	}
	// Forward queries through cursors.
	for rid := Rid(0); rid < 100; rid++ {
		got := sink.Forward(rid, nil)
		if len(got) != 1 || got[0] != smoke.FW[rid] {
			t.Fatalf("Phys-Bdb forward at rid %d = %v, want %d", rid, got, smoke.FW[rid])
		}
	}
}

func TestJoinLogicIdxMatchesSmoke(t *testing.T) {
	gids := datagen.Gids("gids", 30, 1)
	zipf := datagen.Zipf("zipf", 1.0, 1000, 30, 2)
	smoke, err := ops.HashJoinPKFK(gids, "id", nil, zipf, "z", nil, ops.JoinOpts{Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	logic, err := JoinLogicIdx(gids, "id", zipf, "z")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(logic.BuildBW, smoke.BuildBW) || !reflect.DeepEqual(logic.ProbeBW, smoke.ProbeBW) {
		t.Fatal("Logic-Idx join backward differs")
	}
	if !reflect.DeepEqual(logic.ProbeFW, smoke.ProbeFW) {
		t.Fatal("Logic-Idx join probe forward differs")
	}
	for b := 0; b < gids.N; b++ {
		if !reflect.DeepEqual(logic.BuildFW.List(b), smoke.BuildFW.List(b)) {
			t.Fatalf("Logic-Idx join build forward differs at %d", b)
		}
	}
	// Annotated output: join columns plus two rid columns.
	if logic.Annotated.Schema.Col("build_rid") < 0 || logic.Annotated.Schema.Col("probe_rid") < 0 {
		t.Fatal("annotation columns missing")
	}
	if logic.Annotated.N != smoke.OutN {
		t.Fatal("annotated cardinality wrong")
	}
}
