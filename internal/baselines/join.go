package baselines

import (
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// AnnotatedJoin is the Logic-Idx capture for a pk-fk join (§6.1.2): the
// materialized annotated join output (both sides' columns plus two rid
// annotation columns), and the Smoke-identical indexes built by scanning it.
type AnnotatedJoin struct {
	Annotated *storage.Relation
	BuildBW   []Rid
	ProbeBW   []Rid
	BuildFW   *lineage.RidIndex
	ProbeFW   []Rid
}

// JoinLogicIdx computes build ⋈ probe with Perm-style annotation and then
// indexes the annotated output. The costs the paper attributes to this
// approach — materializing the denormalized lineage graph and a second scan
// to build indexes — are both incurred here.
func JoinLogicIdx(build *storage.Relation, buildKey string, probe *storage.Relation, probeKey string) (AnnotatedJoin, error) {
	// Base join, materialized (SELECT *), with capture of the rid pairs the
	// annotation columns need; the annotation itself is what Smoke would
	// call backward arrays, so the extra cost beyond the base query is the
	// materialization plus the index-building scan below.
	jr, err := ops.HashJoinPKFK(build, buildKey, nil, probe, probeKey, nil,
		ops.JoinOpts{Dirs: ops.CaptureBackward, Materialize: true})
	if err != nil {
		return AnnotatedJoin{}, err
	}
	ann := jr.Out
	// Append the annotation columns (input rids of both sides).
	bcol := storage.Column{Ints: make([]int64, jr.OutN)}
	pcol := storage.Column{Ints: make([]int64, jr.OutN)}
	for i := 0; i < jr.OutN; i++ {
		bcol.Ints[i] = int64(jr.BuildBW[i])
		pcol.Ints[i] = int64(jr.ProbeBW[i])
	}
	ann.Schema = append(ann.Schema.Clone(), storage.Field{Name: "build_rid", Type: storage.TInt},
		storage.Field{Name: "probe_rid", Type: storage.TInt})
	ann.Cols = append(ann.Cols, bcol, pcol)

	out := AnnotatedJoin{Annotated: ann}
	// Index-building scan over the annotated relation.
	out.BuildBW = make([]Rid, jr.OutN)
	out.ProbeBW = make([]Rid, jr.OutN)
	out.BuildFW = lineage.NewRidIndex(build.N)
	out.ProbeFW = make([]Rid, probe.N)
	for i := range out.ProbeFW {
		out.ProbeFW[i] = -1
	}
	for o := 0; o < jr.OutN; o++ {
		br := Rid(bcol.Ints[o])
		pr := Rid(pcol.Ints[o])
		out.BuildBW[o] = br
		out.ProbeBW[o] = pr
		out.BuildFW.Append(int(br), Rid(o))
		out.ProbeFW[pr] = Rid(o)
	}
	return out, nil
}
