// Package baselines implements the state-of-the-art alternatives Smoke is
// compared against (§5, Table 1), re-implemented inside this engine exactly
// as the paper did for Perm/GProm (Appendix B): fixing the execution engine
// isolates the principles behind each approach from incidental system
// overheads.
//
//   - Lazy: no capture; lineage queries rewrite to selection scans over the
//     input relations (Appendix C).
//   - Logic-Rid / Logic-Tup: Perm-style query rewriting that materializes a
//     denormalized annotated output relation — one row per (output, input)
//     derivation, annotated with input rids or full input tuples.
//   - Logic-Idx: Logic-Rid plus a scan of the annotated relation to build
//     the same end-to-end rid indexes Smoke builds.
//   - Phys-Mem: operator instrumentation that emits each lineage edge
//     through a dynamic dispatch into Smoke's index structures (the cost of
//     crossing an API boundary per edge).
//   - Phys-Bdb: the same, but edges are stored in a separate B-tree-backed
//     storage subsystem (the BerkeleyDB architecture of Subzero).
package baselines

import (
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Rid aliases the lineage record id.
type Rid = lineage.Rid

// LazyBackward answers a backward lineage query without any captured state:
// it rewrites Lb(o, R) into a selection scan over R with the group-by keys
// bound to the output row's values, conjoined with the base query's original
// predicate (Appendix C). Returns the matching rids.
func LazyBackward(in *storage.Relation, keys []string, out *storage.Relation, o int,
	baseFilter expr.Expr, params expr.Params) ([]Rid, error) {

	pred, err := LazyPredicate(in, keys, out, o, baseFilter)
	if err != nil {
		return nil, err
	}
	p, err := expr.CompilePred(pred, in, params)
	if err != nil {
		return nil, err
	}
	var rids []Rid
	for rid := int32(0); rid < int32(in.N); rid++ {
		if p(rid) {
			rids = append(rids, rid)
		}
	}
	return rids, nil
}

// LazyPredicate builds the rewrite predicate for LazyBackward: key equality
// against output row o's values, AND the base filter if any.
func LazyPredicate(in *storage.Relation, keys []string, out *storage.Relation, o int,
	baseFilter expr.Expr) (expr.Expr, error) {

	var conj []expr.Expr
	if baseFilter != nil {
		conj = append(conj, baseFilter)
	}
	for _, k := range keys {
		oc := out.Schema.MustCol(k)
		switch out.Schema[oc].Type {
		case storage.TInt:
			conj = append(conj, expr.EqE(expr.C(k), expr.I(out.Int(oc, o))))
		case storage.TFloat:
			conj = append(conj, expr.EqE(expr.C(k), expr.F(out.Float(oc, o))))
		case storage.TString:
			conj = append(conj, expr.EqE(expr.C(k), expr.S(out.Str(oc, o))))
		}
	}
	return expr.AndE(conj...), nil
}

// AnnotatedGroupBy is the output of a logical (Perm-rewrite) group-by
// capture: the query result plus the denormalized annotated relation
// O' = Q ⋈keys input. The annotated relation has one row per input record.
type AnnotatedGroupBy struct {
	Out *storage.Relation
	// Annotated holds Q's columns duplicated per input row; its last column
	// is "oid" (the output rid each input row derives). For Logic-Tup the
	// input's columns are appended too.
	Annotated *storage.Relation
	// Oids[i] is the output rid input record i contributes to (-1 if the
	// record fails the base filter). It is the raw annotation column.
	Oids []Rid
}

// LogicKind selects the annotation flavor.
type LogicKind uint8

const (
	// LogicRid annotates with input rids.
	LogicRid LogicKind = iota
	// LogicTup annotates with full input tuples.
	LogicTup
)

// GroupByLogical executes a group-by aggregation with Perm's aggregation
// rewrite rule: Q Zkeys input, materializing the denormalized lineage graph
// as a single annotated relation. The hash table built for aggregation is
// reused for the re-join (the Appendix B tuning).
func GroupByLogical(in *storage.Relation, inRids []Rid, spec ops.GroupBySpec,
	kind LogicKind, baseFilter expr.Expr, params expr.Params) (AnnotatedGroupBy, error) {

	// Base query (no Smoke capture). The forward array of an Inject run
	// would give oids directly, but logical systems recompute the join; we
	// reuse the output's key columns to rebuild the probe side, which is
	// exactly the "reuse the hash table" optimization of Appendix B.
	res, err := ops.HashAgg(in, inRids, spec, ops.AggOpts{Mode: ops.None, Params: params})
	if err != nil {
		return AnnotatedGroupBy{}, err
	}
	out := res.Out

	// Probe: key value -> oid.
	probe, err := newKeyProbe(in, out, spec.Keys)
	if err != nil {
		return AnnotatedGroupBy{}, err
	}

	var filter expr.Pred
	if baseFilter != nil {
		filter, err = expr.CompilePred(baseFilter, in, params)
		if err != nil {
			return AnnotatedGroupBy{}, err
		}
	}

	// Join input with output: one annotated row per input record.
	oids := make([]Rid, 0, in.N)
	inRows := make([]Rid, 0, in.N)
	scan := func(rid Rid) {
		if filter != nil && !filter(rid) {
			return
		}
		oid := probe(rid)
		oids = append(oids, oid)
		inRows = append(inRows, rid)
	}
	if inRids == nil {
		for rid := int32(0); rid < int32(in.N); rid++ {
			scan(rid)
		}
	} else {
		for _, rid := range inRids {
			scan(rid)
		}
	}

	// Materialize the denormalized annotated relation: Q's columns gathered
	// per input row — the data duplication the paper charges logical
	// approaches for — plus the annotation column(s).
	annotated := out.Gather("annotated", oids)
	annotated.Schema = append(annotated.Schema.Clone(), storage.Field{Name: "oid", Type: storage.TInt})
	oidCol := storage.Column{Ints: make([]int64, len(oids))}
	for i, o := range oids {
		oidCol.Ints[i] = int64(o)
	}
	annotated.Cols = append(annotated.Cols, oidCol)
	switch kind {
	case LogicRid:
		ridCol := storage.Column{Ints: make([]int64, len(inRows))}
		for i, r := range inRows {
			ridCol.Ints[i] = int64(r)
		}
		annotated.Schema = append(annotated.Schema, storage.Field{Name: "rid", Type: storage.TInt})
		annotated.Cols = append(annotated.Cols, ridCol)
	case LogicTup:
		tup := in.Gather("tup", inRows)
		for c, f := range tup.Schema {
			annotated.Schema = append(annotated.Schema, storage.Field{Name: "in_" + f.Name, Type: f.Type})
			annotated.Cols = append(annotated.Cols, tup.Cols[c])
		}
	}
	annotated.N = len(oids)
	return AnnotatedGroupBy{Out: out, Annotated: annotated, Oids: oids}, nil
}

// newKeyProbe compiles a function mapping an input rid to the output rid
// whose group-by key it matches.
func newKeyProbe(in, out *storage.Relation, keys []string) (func(Rid) Rid, error) {
	if len(keys) == 1 {
		kc := in.Schema.Col(keys[0])
		oc := out.Schema.Col(keys[0])
		if kc < 0 || oc < 0 {
			return nil, errUnknownKey(keys[0])
		}
		switch in.Schema[kc].Type {
		case storage.TInt:
			m := make(map[int64]Rid, out.N)
			for o := 0; o < out.N; o++ {
				m[out.Int(oc, o)] = Rid(o)
			}
			col := in.Cols[kc].Ints
			return func(rid Rid) Rid { return m[col[rid]] }, nil
		case storage.TString:
			m := make(map[string]Rid, out.N)
			for o := 0; o < out.N; o++ {
				m[out.Str(oc, o)] = Rid(o)
			}
			col := in.Cols[kc].Strs
			return func(rid Rid) Rid { return m[col[rid]] }, nil
		}
	}
	// Composite: concatenate stringified key parts.
	inCols := make([]int, len(keys))
	outCols := make([]int, len(keys))
	for i, k := range keys {
		inCols[i] = in.Schema.Col(k)
		outCols[i] = out.Schema.Col(k)
		if inCols[i] < 0 || outCols[i] < 0 {
			return nil, errUnknownKey(k)
		}
	}
	enc := func(rel *storage.Relation, cols []int, row int, buf []byte) []byte {
		for _, c := range cols {
			switch rel.Schema[c].Type {
			case storage.TInt:
				v := rel.Cols[c].Ints[row]
				for s := 0; s < 8; s++ {
					buf = append(buf, byte(v>>(8*s)))
				}
			case storage.TString:
				buf = append(buf, rel.Cols[c].Strs[row]...)
				buf = append(buf, 0)
			}
		}
		return buf
	}
	m := make(map[string]Rid, out.N)
	var obuf []byte
	for o := 0; o < out.N; o++ {
		obuf = enc(out, outCols, o, obuf[:0])
		m[string(obuf)] = Rid(o)
	}
	var buf []byte
	return func(rid Rid) Rid {
		buf = enc(in, inCols, int(rid), buf[:0])
		return m[string(buf)]
	}, nil
}

type errUnknownKey string

func (e errUnknownKey) Error() string { return "baselines: unknown group-by key " + string(e) }

// GroupByLogicIdx is Logic-Idx: Logic-Rid followed by a scan of the
// annotation to build Smoke-identical backward/forward indexes.
func GroupByLogicIdx(in *storage.Relation, inRids []Rid, spec ops.GroupBySpec,
	baseFilter expr.Expr, params expr.Params) (AnnotatedGroupBy, *lineage.RidIndex, []Rid, error) {

	ann, err := GroupByLogical(in, inRids, spec, LogicRid, baseFilter, params)
	if err != nil {
		return AnnotatedGroupBy{}, nil, nil, err
	}
	bw := lineage.NewRidIndex(ann.Out.N)
	fw := make([]Rid, in.N)
	for i := range fw {
		fw[i] = -1
	}
	ridCol := ann.Annotated.Cols[ann.Annotated.Schema.MustCol("rid")].Ints
	for i, o := range ann.Oids {
		rid := Rid(ridCol[i])
		bw.Append(int(o), rid)
		fw[rid] = o
	}
	return ann, bw, fw, nil
}

// BackwardFromAnnotated answers a backward query by scanning the annotated
// relation for rows with the given oid (the Logic-Rid / Logic-Tup query path
// of Figure 9: a full scan of a relation wider than the input). For Logic-Rid
// the returned values are input rids (from the rid annotation column); for
// Logic-Tup they are positions in the annotated relation, whose rows *are*
// the input tuples.
func BackwardFromAnnotated(ann *AnnotatedGroupBy, o Rid) []Rid {
	// The scan goes through the engine's compiled-predicate path, exactly
	// like Lazy's rewrite scan, so the comparison isolates what the paper
	// measures (scan cardinality and width) rather than loop mechanics.
	// Note (docs/benchmarks.md): in this engine's columnar layout the annotated
	// relation's extra width costs less than in the paper's row store.
	pred, err := expr.CompilePred(expr.EqE(expr.C("oid"), expr.I(int64(o))), ann.Annotated, nil)
	if err != nil {
		return nil
	}
	var rids []Rid
	rc := ann.Annotated.Schema.Col("rid")
	var src []int64
	if rc >= 0 {
		src = ann.Annotated.Cols[rc].Ints
	}
	for i := int32(0); i < int32(ann.Annotated.N); i++ {
		if pred(i) {
			if src != nil {
				rids = append(rids, Rid(src[i]))
			} else {
				rids = append(rids, i)
			}
		}
	}
	return rids
}
