package smoke_test

import (
	"sort"
	"testing"

	"smoke"
)

// These tests exercise the library through the public facade only — the way
// a downstream user consumes it.

func salesDB(t *testing.T) (*smoke.DB, *smoke.Relation) {
	t.Helper()
	rel := smoke.NewEmpty("sales", smoke.Schema{
		{Name: "region", Type: smoke.TString},
		{Name: "product", Type: smoke.TString},
		{Name: "amount", Type: smoke.TFloat},
		{Name: "qty", Type: smoke.TInt},
	})
	rows := []struct {
		r, p string
		a    float64
		q    int
	}{
		{"east", "widget", 120, 2}, {"east", "gadget", 80, 1}, {"west", "widget", 200, 4},
		{"west", "widget", 40, 1}, {"east", "widget", 60, 1}, {"west", "gadget", 90, 3},
	}
	for _, x := range rows {
		rel.AppendRow(x.r, x.p, x.a, x.q)
	}
	db := smoke.Open()
	db.Register(rel)
	return db, rel
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db, rel := salesDB(t)
	res, err := db.Query().
		From("sales", nil).
		GroupBy("region").
		Agg(smoke.Sum, smoke.C("amount"), "revenue").
		Agg(smoke.Count, nil, "orders").
		Run(smoke.CaptureOptions{Mode: smoke.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("groups = %d", res.Out.N)
	}
	for o := 0; o < res.Out.N; o++ {
		back, err := res.Backward("sales", []smoke.Rid{smoke.Rid(o)})
		if err != nil {
			t.Fatal(err)
		}
		region := res.Out.Str(0, o)
		sum := 0.0
		for _, rid := range back {
			if rel.Str(0, int(rid)) != region {
				t.Fatal("lineage crosses groups")
			}
			sum += rel.Float(2, int(rid))
		}
		if sum != res.Out.Float(1, o) {
			t.Fatalf("group %s: lineage sums to %v, output says %v", region, sum, res.Out.Float(1, o))
		}
		fwd, err := res.Forward("sales", back[:1])
		if err != nil || len(fwd) != 1 || fwd[0] != smoke.Rid(o) {
			t.Fatalf("forward(backward) != identity: %v, %v", fwd, err)
		}
	}
}

func TestPublicAPIWithFilterAndParams(t *testing.T) {
	db, _ := salesDB(t)
	res, err := db.Query().
		From("sales", smoke.GeE(smoke.C("amount"), smoke.P("min"))).
		GroupBy("product").
		Agg(smoke.Avg, smoke.C("amount"), "avg_amount").
		Run(smoke.CaptureOptions{Mode: smoke.Defer, Params: smoke.Params{"min": 80.0}})
	if err != nil {
		t.Fatal(err)
	}
	// Rows with amount < 80 must be invisible to lineage.
	for o := 0; o < res.Out.N; o++ {
		back, _ := res.Backward("sales", []smoke.Rid{smoke.Rid(o)})
		for _, rid := range back {
			if rid == 3 || rid == 4 { // amounts 40 and 60
				t.Fatal("filtered row leaked into lineage")
			}
		}
	}
}

func TestPublicAPIDataSkippingAndCube(t *testing.T) {
	db, rel := salesDB(t)
	res, err := db.Query().
		From("sales", nil).
		GroupBy("region").
		Agg(smoke.Sum, smoke.C("amount"), "revenue").
		Run(smoke.CaptureOptions{
			Mode:        smoke.Inject,
			PartitionBy: []string{"product"},
			Cube: &smoke.CubeSpec{
				Dims: []string{"product"},
				Aggs: []smoke.CubeAgg{{Fn: smoke.Sum, Arg: smoke.C("amount"), Name: "revenue"}},
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	part, err := res.BackwardPartition(0, []any{"widget"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range part {
		if rel.Str(1, int(rid)) != "widget" {
			t.Fatal("partition holds non-widget rows")
		}
	}
	ans, err := res.Cube().Query(0, map[string]any{"product": "widget"})
	if err != nil {
		t.Fatal(err)
	}
	if ans.N != 1 {
		t.Fatalf("cube cells = %d", ans.N)
	}
	// Cube cell must equal summing the partition directly.
	sum := 0.0
	for _, rid := range part {
		sum += rel.Float(2, int(rid))
	}
	if ans.Float(1, 0) != sum {
		t.Fatalf("cube revenue %v != partition sum %v", ans.Float(1, 0), sum)
	}
}

func TestPublicAPILinkedBrushing(t *testing.T) {
	// The Figure 1 pattern through the facade: backward from one view,
	// forward into another.
	db, _ := salesDB(t)
	v1, err := db.Query().From("sales", nil).GroupBy("region").
		Agg(smoke.Count, nil, "c").
		Run(smoke.CaptureOptions{Mode: smoke.Inject, Dirs: smoke.CaptureBackward})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.Query().From("sales", nil).GroupBy("product").
		Agg(smoke.Count, nil, "c").
		Run(smoke.CaptureOptions{Mode: smoke.Inject, Dirs: smoke.CaptureForward})
	if err != nil {
		t.Fatal(err)
	}
	// Brush "east" in v1 → X records → bars in v2.
	var east smoke.Rid = -1
	for o := 0; o < v1.Out.N; o++ {
		if v1.Out.Str(0, o) == "east" {
			east = smoke.Rid(o)
		}
	}
	back, err := v1.BackwardDistinct("sales", []smoke.Rid{east})
	if err != nil {
		t.Fatal(err)
	}
	bars, err := v2.ForwardDistinct("sales", back)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, b := range bars {
		names = append(names, v2.Out.Str(0, int(b)))
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "gadget" || names[1] != "widget" {
		t.Fatalf("highlighted bars = %v", names)
	}
}
