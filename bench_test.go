// Benchmarks regenerating every table and figure of the paper's evaluation,
// one per experiment (see DESIGN.md's per-experiment index). Each benchmark
// delegates to the same runner cmd/smokebench uses, at small scale with
// output discarded; run cmd/smokebench to see the actual rows.
//
//	go test -bench=. -benchmem
package smoke_test

import (
	"io"
	"testing"

	"smoke/internal/bench"
)

func runExp(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Scale: "small", Reps: 1, W: io.Discard}
	runner, ok := bench.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 5: group-by aggregation capture across techniques.
func BenchmarkFig5_GroupByCapture(b *testing.B) { runExp(b, "fig5") }

// §6.1.1 cardinality statistics: Smoke-I vs Smoke-I+TC.
func BenchmarkFig5_CardinalityStats(b *testing.B) { runExp(b, "fig5tc") }

// Figure 6: pk-fk join capture.
func BenchmarkFig6_PKFKJoinCapture(b *testing.B) { runExp(b, "fig6") }

// Figure 7: M:N join capture variants.
func BenchmarkFig7_MNJoinCapture(b *testing.B) { runExp(b, "fig7") }

// Figure 8: TPC-H Q1/Q3/Q10/Q12 capture overhead.
func BenchmarkFig8_TPCHCapture(b *testing.B) { runExp(b, "fig8") }

// Figure 9: backward lineage query latency vs skew.
func BenchmarkFig9_LineageQuery(b *testing.B) { runExp(b, "fig9") }

// Figure 10: data skipping for Q1b consuming queries.
func BenchmarkFig10_DataSkipping(b *testing.B) { runExp(b, "fig10") }

// Figure 11: group-by push-down for Q1c consuming queries.
func BenchmarkFig11_AggPushdownQuery(b *testing.B) { runExp(b, "fig11") }

// Figure 12: capture cost of aggregation push-down.
func BenchmarkFig12_AggPushdownCapture(b *testing.B) { runExp(b, "fig12") }

// Figure 13: crossfilter cumulative latency.
func BenchmarkFig13_CrossfilterCumulative(b *testing.B) { runExp(b, "fig13") }

// Figure 14: crossfilter per-interaction latency by view.
func BenchmarkFig14_CrossfilterPerInteraction(b *testing.B) { runExp(b, "fig14") }

// Figure 15: FD-violation profiling.
func BenchmarkFig15_DataProfiling(b *testing.B) { runExp(b, "fig15") }

// Figure 21 (Appendix G.1): selection capture with selectivity estimates.
func BenchmarkFig21_SelectionCapture(b *testing.B) { runExp(b, "fig21") }

// Figure 22 (Appendix G.2): input-relation pruning.
func BenchmarkFig22_PruningRelations(b *testing.B) { runExp(b, "fig22") }

// Figure 23 (Appendix G.2): selection push-down crossover.
func BenchmarkFig23_SelectionPushdown(b *testing.B) { runExp(b, "fig23") }

// Beyond-paper: morsel-parallel worker scaling (workers = 1/2/4/8) for the
// select and group-by microbenches, with a serial-vs-parallel lineage
// equality gate. cmd/smokebench -exp parscale emits BENCH_parallel.json.
func BenchmarkParScale_WorkerScaling(b *testing.B) { runExp(b, "parscale") }
