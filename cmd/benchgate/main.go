// Command benchgate is the CI bench-regression gate: it compares the
// BENCH_*.json reports emitted by a smokebench run against the checked-in
// baselines and exits non-zero when a measured row regressed beyond the
// latency budget (baseline_ms * tol + slack) or vanished. Lineage-equality
// failures abort smokebench itself, so a green gate means both "no
// wrong-lineage" and "no silent slowdown".
//
// Usage:
//
//	smokebench -exp compress,parscale,plan,consume -scale tiny -reps 1 -json bench/out
//	benchgate -baseline bench/baselines -current bench/out -tol 2.0 -slack-ms 10
package main

import (
	"flag"
	"fmt"
	"os"

	"smoke/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "bench/baselines", "directory of checked-in baseline BENCH_*.json files")
	current := flag.String("current", "bench/out", "directory of freshly emitted BENCH_*.json files")
	tol := flag.Float64("tol", 2.0, "multiplicative latency tolerance (fail when current > baseline*tol + slack)")
	slack := flag.Float64("slack-ms", 10, "additive slack in milliseconds (absorbs timer noise on tiny rows)")
	flag.Parse()

	cfg := bench.GateConfig{Tolerance: *tol, SlackMS: *slack}
	if err := bench.CompareGateDirs(*baseline, *current, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL\n%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (%s vs %s, tol %.1fx + %.0fms)\n", *current, *baseline, *tol, *slack)
}
