// Command benchgate is the CI bench-regression gate: it compares the
// BENCH_*.json reports emitted by a smokebench run against the checked-in
// baselines and exits non-zero when a measured row regressed beyond the
// latency budget (baseline_ms * tol + slack) or vanished. Lineage-equality
// failures abort smokebench itself, so a green gate means both "no
// wrong-lineage" and "no silent slowdown".
//
// It also enforces the worker-scaling ratio on the current reports: for every
// measurement present at both workers=1 and workers=N (identical identity
// otherwise), the parallel run must be at least min-speedup times faster.
// Reports whose detected-cores annotation is below N skip the scaling gate
// with a logged annotation — a 1-core runner cannot demonstrate a speedup,
// and failing there would just test the CI hardware.
//
// It also enforces the trace-strategy invariant on the current
// BENCH_lazy.json (when present): at every trace-rate point at or below
// -lazy-max-rate, the lazy end-to-end total (capture-free base query plus
// re-executed traces) must beat the eager total within -lazy-slack-ms.
//
// Finally it enforces the horizontal-scaling ratio on the current
// BENCH_serve.json (when present): the scatter/gather tier's trace p95 at
// shards=N must stay within -shard-max-ratio of the shards=1 proxy row.
// Reports detecting fewer than -shard-min-cores CPUs skip with a logged
// annotation — a single-core runner cannot run a shard wave concurrently.
//
// Usage:
//
//	smokebench -exp compress,parscale,plan,consume -scale tiny -reps 1 -json bench/out
//	benchgate -baseline bench/baselines -current bench/out -tol 2.0 -slack-ms 10 \
//	    -at-workers 4 -min-speedup 1.2 -scaling-min-ms 20 \
//	    -lazy-max-rate 0.011 -lazy-slack-ms 1 \
//	    -shard-max-ratio 2.0 -shard-min-cores 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"smoke/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "bench/baselines", "directory of checked-in baseline BENCH_*.json files")
	current := flag.String("current", "bench/out", "directory of freshly emitted BENCH_*.json files")
	tol := flag.Float64("tol", 2.0, "multiplicative latency tolerance (fail when current > baseline*tol + slack)")
	slack := flag.Float64("slack-ms", 10, "additive slack in milliseconds (absorbs timer noise on tiny rows)")
	atWorkers := flag.Int("at-workers", 4, "parallel worker count compared against workers=1 by the scaling gate")
	minSpeedup := flag.Float64("min-speedup", 1.2, "required ms(workers=1)/ms(workers=N) ratio; 0 disables the scaling gate")
	scalingMinMS := flag.Float64("scaling-min-ms", 20, "scaling-gate noise floor: skip pairs whose serial latency is below this")
	lazyMaxRate := flag.Float64("lazy-max-rate", 0.011, "highest trace_rate gated by the lazy-beats-eager rule; negative disables")
	lazySlackMS := flag.Float64("lazy-slack-ms", 1, "additive slack for the lazy gate: lazy_total <= eager_total + slack")
	shardMaxRatio := flag.Float64("shard-max-ratio", 2.0, "allowed shards=N vs shards=1 trace p95 ratio in BENCH_serve.json; 0 disables")
	shardMaxShards := flag.Int("shard-max-shards", 4, "scaled-out shard count compared against shards=1 by the shard gate")
	shardMinCores := flag.Int("shard-min-cores", 2, "skip the shard gate (logged) when the report detected fewer cores")
	shardSlackMS := flag.Float64("shard-slack-ms", 10, "additive slack for the shard gate (scatter constants dominate sub-ms tiny-scale rows)")
	flag.Parse()

	cfg := bench.GateConfig{Tolerance: *tol, SlackMS: *slack}
	fail := false
	if err := bench.CompareGateDirs(*baseline, *current, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL\n%v\n", err)
		fail = true
	}
	scfg := bench.ScalingConfig{
		AtWorkers:  *atWorkers,
		MinSpeedup: *minSpeedup,
		MinMS:      *scalingMinMS,
		Logf: func(format string, args ...any) {
			fmt.Printf("benchgate: "+format+"\n", args...)
		},
	}
	if err := bench.ScalingGateDir(*current, scfg); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL\n%v\n", err)
		fail = true
	}
	lcfg := bench.LazyConfig{
		MaxRate: *lazyMaxRate,
		SlackMS: *lazySlackMS,
		Logf: func(format string, args ...any) {
			fmt.Printf("benchgate: "+format+"\n", args...)
		},
	}
	if err := bench.LazyGateFile(filepath.Join(*current, "BENCH_lazy.json"), lcfg); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL\n%v\n", err)
		fail = true
	}
	shcfg := bench.ShardConfig{
		MaxShards: *shardMaxShards,
		MaxRatio:  *shardMaxRatio,
		SlackMS:   *shardSlackMS,
		MinCores:  *shardMinCores,
		Logf: func(format string, args ...any) {
			fmt.Printf("benchgate: "+format+"\n", args...)
		},
	}
	if err := bench.ShardGateFile(filepath.Join(*current, "BENCH_serve.json"), shcfg); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL\n%v\n", err)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (%s vs %s, tol %.1fx + %.0fms; scaling w%d >= %.2fx; lazy <= eager at rate <= %.3f; shards=%d p95 <= %.1fx shards=1)\n",
		*current, *baseline, *tol, *slack, *atWorkers, *minSpeedup, *lazyMaxRate, *shardMaxShards, *shardMaxRatio)
}
