// Command smokebench regenerates the paper's tables and figures (DESIGN.md
// per-experiment index). Each experiment prints the series the corresponding
// figure plots.
//
// Usage:
//
//	smokebench -exp fig5,fig8          # run specific experiments
//	smokebench -exp all                # run everything, paper order
//	smokebench -exp fig13 -scale paper # paper-scale datasets (slow, RAM-hungry)
//	smokebench -exp compress,parscale,plan,consume -scale tiny -reps 1 -json bench/out
//	                                   # CI smoke-job: lineage-equality gates
//	                                   # at sub-second scale; benchgate then
//	                                   # compares bench/out to bench/baselines
//	smokebench -exp plan -profile prof # also write prof/profile_cpu.pprof and
//	                                   # prof/profile_heap.pprof for
//	                                   # `go tool pprof` drill-down
//	smokebench -list                   # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"smoke/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (see -list), or 'all'")
	scale := flag.String("scale", "small", "dataset scale: tiny | small | paper")
	reps := flag.Int("reps", 3, "timed repetitions per measurement (median reported)")
	jsonFlag := flag.String("json", "", "directory for BENCH_*.json output (created if missing); default: cwd at small/paper scale, suppressed at tiny so CI noise never overwrites the committed trajectory files")
	profileDir := flag.String("profile", "", "directory for pprof artifacts (created if missing): CPU profile over the whole experiment run (profile_cpu.pprof) plus an end-of-run heap profile (profile_heap.pprof)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order() {
			fmt.Println(id)
		}
		return
	}

	jsonDir := *jsonFlag
	if jsonDir == "" {
		// Tiny scale exists for CI gate runs; its timings are noise, so it
		// must not overwrite the committed BENCH_*.json artifacts in the cwd
		// unless an output directory is asked for explicitly (the CI
		// bench-regression gate does).
		jsonDir = "."
		if *scale == "tiny" {
			jsonDir = ""
		}
	} else if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "smokebench: %v\n", err)
		os.Exit(1)
	}
	cfg := bench.Config{Scale: *scale, Reps: *reps, W: os.Stdout, JSONDir: jsonDir}
	runners := bench.Experiments()

	var cpuProf *os.File
	if *profileDir != "" {
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: %v\n", err)
			os.Exit(1)
		}
		var err error
		cpuProf, err = os.Create(filepath.Join(*profileDir, "profile_cpu.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpuProf); err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *exp == "all" {
		ids = bench.Order()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		r, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "smokebench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		if err := r(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if cpuProf != nil {
		pprof.StopCPUProfile()
		cpuProf.Close()
		heapProf, err := os.Create(filepath.Join(*profileDir, "profile_heap.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(heapProf); err != nil {
			fmt.Fprintf(os.Stderr, "smokebench: heap profile: %v\n", err)
			os.Exit(1)
		}
		heapProf.Close()
		fmt.Fprintf(os.Stdout, "wrote %s and %s\n",
			filepath.Join(*profileDir, "profile_cpu.pprof"),
			filepath.Join(*profileDir, "profile_heap.pprof"))
	}
}
