// Command mdlinkcheck verifies that relative links in markdown files point
// at files that exist in the repository. CI runs it over README.md,
// DESIGN.md, and docs/ so the docs tree cannot silently rot as files move
// (external http(s) links and pure #anchors are not fetched or resolved —
// this is a filesystem check, not a crawler).
//
// Usage:
//
//	mdlinkcheck README.md DESIGN.md docs
//
// Directories are walked recursively for *.md files. Exits non-zero listing
// every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links/images: [text](target) — target up to
// the first closing paren (the docs do not use nested-paren targets).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
			os.Exit(2)
		}
		if info.IsDir() {
			err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && strings.HasSuffix(path, ".md") {
					files = append(files, path)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		files = append(files, arg)
	}

	var broken []string
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			checked++
			// Strip an anchor; resolve relative to the linking file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s: link %q -> missing %s", file, m[1], resolved))
			}
		}
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken link(s):\n  %s\n", len(broken), strings.Join(broken, "\n  "))
		os.Exit(1)
	}
	fmt.Printf("mdlinkcheck: OK (%d files, %d relative links)\n", len(files), checked)
}

// skipTarget reports whether a link target is outside this check's scope:
// absolute URLs, mail links, and in-page anchors.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#")
}
