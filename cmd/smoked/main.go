// Command smoked serves the smoke engine over HTTP (internal/server): table
// ingest (CSV/JSON), SQL with lineage-consuming LINEAGE sources and EXPLAIN,
// and session-scoped retained results that clients trace backward/forward
// across requests — the paper's interactive loop as a network service.
//
// Usage:
//
//	smoked                         # serve on :8080 with GOMAXPROCS workers
//	smoked -addr :9090 -workers 8  # explicit listen address and parallelism
//	smoked -session-ttl 5m -max-retained-mb 256
//	smoked -data-dir /var/lib/smoked   # out-of-core: spill + survive restarts
//	smoked -shards 4                   # horizontal: 4 in-process shard nodes
//
// With -data-dir, retained results demote to mmap-backed segments on memory
// pressure instead of vanishing, ingested tables persist, and a restart with
// the same directory recovers both — sessions keep answering bound traces.
// SIGINT/SIGTERM drain in-flight requests (bounded by -drain-timeout), flush
// retained state to the data dir, and exit.
//
// With -shards N (N > 1), smoked serves the same HTTP API from a
// scatter/gather coordinator over N in-process shard nodes: tables ingested
// with ?dist=shard partition by rid range, queries and traces over them
// scatter and merge element-identically, and /healthz reports per-shard
// counters. The shard tier is memory-only; -shards and -data-dir are
// mutually exclusive.
//
// Quickstart against a running server:
//
//	curl -s -X POST localhost:8080/v1/tables/orders -H 'Content-Type: text/csv' \
//	     --data-binary $'region,amount\nemea,10\napac,20\nemea,30\n'
//	curl -s -X POST localhost:8080/v1/query -d '{"sql":"SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}'
//	curl -s -X POST localhost:8080/v1/sessions          # → {"id":"s00000001",...}
//	curl -s -X POST localhost:8080/v1/sessions/s00000001/results/byregion \
//	     -d '{"sql":"SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}'
//	curl -s -X POST localhost:8080/v1/sessions/s00000001/results/byregion/trace \
//	     -d '{"direction":"backward","table":"orders","rids":[0]}'
//
// See docs/http-api.md for the full endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/server"
	"smoke/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "morsel-parallel workers shared (fairly) across requests")
	inflight := flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2x GOMAXPROCS)")
	queued := flag.Int("max-queued", 0, "max requests waiting for an execution slot (0 = 4x max-inflight)")
	ttl := flag.Duration("session-ttl", 15*time.Minute, "idle session lifetime before eviction")
	maxSessions := flag.Int("max-sessions", 64, "max live sessions (LRU beyond)")
	maxResults := flag.Int("max-results-per-session", 32, "max retained results per session (LRU beyond)")
	maxRetainedMB := flag.Int64("max-retained-mb", 512, "retained result budget across all sessions, MiB (LRU beyond)")
	cacheEntries := flag.Int("cache-entries", 256, "plan-fingerprint result cache entries (-1 disables)")
	dataDir := flag.String("data-dir", "", "directory for the disk tier: demoted results, persisted tables, restart recovery (empty = memory-only)")
	maxDiskMB := flag.Int64("max-disk-mb", 4096, "demoted result budget in the data dir, MiB (LRU-deleted beyond; -1 unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on SIGINT/SIGTERM before flushing and exiting")
	shards := flag.Int("shards", 1, "in-process shard nodes behind a scatter/gather coordinator (1 = single-node)")
	shardTimeout := flag.Duration("shard-timeout", 5*time.Second, "per-shard call deadline; a shard missing it answers 503 instead of hanging the coordinator")
	flag.Parse()

	if *shards > 1 {
		if *dataDir != "" {
			log.Fatalf("smoked: -shards and -data-dir are mutually exclusive (the shard tier is memory-only)")
		}
		coord := shard.New(shard.Config{
			Shards:       *shards,
			Workers:      *workers,
			ShardTimeout: *shardTimeout,
			MaxInFlight:  *inflight,
			SessionTTL:   *ttl,
		})
		fmt.Fprintf(os.Stderr, "smoked: serving on %s (shards=%d, workers=%d/shard, session-ttl=%s)\n",
			*addr, *shards, *workers, *ttl)
		serve(addr, coord, drainTimeout, func() error { return coord.Close() })
		return
	}

	db := core.Open(core.WithWorkers(*workers))
	defer db.Close()

	var store *diskstore.Store
	if *dataDir != "" {
		var err error
		store, err = diskstore.Open(*dataDir)
		if err != nil {
			log.Fatalf("smoked: open data dir: %v", err)
		}
		defer store.Close()
	}

	maxDiskBytes := *maxDiskMB << 20
	if *maxDiskMB < 0 {
		maxDiskBytes = -1
	}
	srv := server.New(server.Config{
		DB:                   db,
		MaxInFlight:          *inflight,
		MaxQueued:            *queued,
		SessionTTL:           *ttl,
		MaxSessions:          *maxSessions,
		MaxResultsPerSession: *maxResults,
		MaxRetainedBytes:     *maxRetainedMB << 20,
		CacheEntries:         *cacheEntries,
		Store:                store,
		MaxDiskBytes:         maxDiskBytes,
	})

	if store != nil {
		fmt.Fprintf(os.Stderr, "smoked: serving on %s (workers=%d, session-ttl=%s, data-dir=%s)\n",
			*addr, *workers, *ttl, store.Dir())
	} else {
		fmt.Fprintf(os.Stderr, "smoked: serving on %s (workers=%d, session-ttl=%s)\n", *addr, *workers, *ttl)
	}
	serve(addr, srv, drainTimeout, func() error { return srv.Close() })
	if store != nil {
		fmt.Fprintln(os.Stderr, "smoked: state flushed; bye")
	}
}

// serve runs the HTTP listener until a shutdown signal, then drains: stop
// accepting, let in-flight requests finish (bounded), flush retained state
// through closeFn, exit. A second signal aborts the drain immediately.
func serve(addr *string, handler http.Handler, drainTimeout *time.Duration, closeFn func() error) {
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatalf("smoked: %v", err)
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills hard
		fmt.Fprintf(os.Stderr, "smoked: draining (up to %s)...\n", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "smoked: drain incomplete: %v\n", err)
		}
		cancel()
	}
	if err := closeFn(); err != nil {
		log.Fatalf("smoked: flush retained state: %v", err)
	}
}
