// Command smoked serves the smoke engine over HTTP (internal/server): table
// ingest (CSV/JSON), SQL with lineage-consuming LINEAGE sources and EXPLAIN,
// and session-scoped retained results that clients trace backward/forward
// across requests — the paper's interactive loop as a network service.
//
// Usage:
//
//	smoked                         # serve on :8080 with GOMAXPROCS workers
//	smoked -addr :9090 -workers 8  # explicit listen address and parallelism
//	smoked -session-ttl 5m -max-retained-mb 256
//
// Quickstart against a running server:
//
//	curl -s -X POST localhost:8080/v1/tables/orders -H 'Content-Type: text/csv' \
//	     --data-binary $'region,amount\nemea,10\napac,20\nemea,30\n'
//	curl -s -X POST localhost:8080/v1/query -d '{"sql":"SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}'
//	curl -s -X POST localhost:8080/v1/sessions          # → {"id":"s00000001",...}
//	curl -s -X POST localhost:8080/v1/sessions/s00000001/results/byregion \
//	     -d '{"sql":"SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}'
//	curl -s -X POST localhost:8080/v1/sessions/s00000001/results/byregion/trace \
//	     -d '{"direction":"backward","table":"orders","rids":[0]}'
//
// See docs/http-api.md for the full endpoint reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"smoke/internal/core"
	"smoke/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "morsel-parallel workers shared (fairly) across requests")
	inflight := flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2x GOMAXPROCS)")
	queued := flag.Int("max-queued", 0, "max requests waiting for an execution slot (0 = 4x max-inflight)")
	ttl := flag.Duration("session-ttl", 15*time.Minute, "idle session lifetime before eviction")
	maxSessions := flag.Int("max-sessions", 64, "max live sessions (LRU beyond)")
	maxResults := flag.Int("max-results-per-session", 32, "max retained results per session (LRU beyond)")
	maxRetainedMB := flag.Int64("max-retained-mb", 512, "retained result budget across all sessions, MiB (LRU beyond)")
	cacheEntries := flag.Int("cache-entries", 256, "plan-fingerprint result cache entries (-1 disables)")
	flag.Parse()

	db := core.Open(core.WithWorkers(*workers))
	defer db.Close()

	srv := server.New(server.Config{
		DB:                   db,
		MaxInFlight:          *inflight,
		MaxQueued:            *queued,
		SessionTTL:           *ttl,
		MaxSessions:          *maxSessions,
		MaxResultsPerSession: *maxResults,
		MaxRetainedBytes:     *maxRetainedMB << 20,
		CacheEntries:         *cacheEntries,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "smoked: serving on %s (workers=%d, session-ttl=%s)\n", *addr, *workers, *ttl)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("smoked: %v", err)
	}
}
