// Command smokecli is a small interactive shell over the engine: run SQL
// aggregation queries with lineage capture and explore backward/forward
// lineage of the latest result.
//
//	smokecli -dataset tpch -sf 0.01
//	smoke> SELECT l_shipmode, COUNT(*) AS c FROM lineitem GROUP BY l_shipmode;
//	smoke> EXPLAIN SELECT l_shipmode, COUNT(*) AS c FROM orders JOIN lineitem ON o_orderkey = l_orderkey GROUP BY l_shipmode;
//	smoke> \backward lineitem 0
//	smoke> \forward lineitem 123
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smoke/internal/core"
	"smoke/internal/datagen"
	"smoke/internal/ops"
	"smoke/internal/sql"
	"smoke/internal/tpch"
)

func main() {
	dataset := flag.String("dataset", "tpch", "demo dataset: tpch | zipf")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	db := core.Open()
	switch *dataset {
	case "tpch":
		tp := tpch.Generate(*sf, 42)
		db.Register(tp.Nation)
		db.Register(tp.Customer)
		db.Register(tp.Orders)
		db.Register(tp.Lineitem)
		fmt.Printf("loaded TPC-H SF=%.2f: nation, customer, orders (%d), lineitem (%d)\n",
			*sf, tp.Orders.N, tp.Lineitem.N)
	case "zipf":
		db.Register(datagen.Zipf("zipf", 1.0, 1_000_000, 1000, 42))
		fmt.Println("loaded zipf(id, z, v): 1M rows, 1000 groups")
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	fmt.Println(`queries capture lineage (Inject); end with ';'. EXPLAIN SELECT ... prints the optimizer trace. Commands: \backward <table> <outrid>, \forward <table> <rid>, \quit`)

	var last *core.Result
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("smoke> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if strings.HasPrefix(line, `\`) {
			runCommand(line, db, last)
			fmt.Print("smoke> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString(" ")
		if !strings.Contains(line, ";") {
			fmt.Print("    -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		stmt = strings.TrimSuffix(stmt, "; ")
		buf.Reset()
		if res := runQuery(db, strings.TrimSuffix(stmt, ";")); res != nil {
			last = res
		}
		fmt.Print("smoke> ")
	}
}

func runQuery(db *core.DB, stmt string) *core.Result {
	st, err := sql.Parse(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return nil
	}
	if st.Explain {
		out, err := sql.ExplainStmt(db, st)
		if err != nil {
			fmt.Println("error:", err)
			return nil
		}
		fmt.Print(out)
		return nil
	}
	q, err := sql.CompileStmt(db, st)
	if err != nil {
		fmt.Println("error:", err)
		return nil
	}
	res, err := q.Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		fmt.Println("error:", err)
		return nil
	}
	printRelation(res)
	return res
}

func printRelation(res *core.Result) {
	out := res.Out
	for _, f := range out.Schema {
		fmt.Printf("%-18s", f.Name)
	}
	fmt.Println()
	limit := out.N
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		for c := range out.Schema {
			fmt.Printf("%-18v", out.Value(c, i))
		}
		fmt.Println()
	}
	if out.N > limit {
		fmt.Printf("... (%d rows total)\n", out.N)
	}
}

func runCommand(line string, db *core.DB, last *core.Result) {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		os.Exit(0)
	case `\backward`, `\forward`:
		if last == nil {
			fmt.Println("run a query first")
			return
		}
		if len(fields) != 3 {
			fmt.Printf("usage: %s <table> <rid>\n", fields[0])
			return
		}
		rid, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Println("bad rid:", fields[2])
			return
		}
		var rids []core.Rid
		if fields[0] == `\backward` {
			rids, err = last.Backward(fields[1], []core.Rid{core.Rid(rid)})
		} else {
			rids, err = last.Forward(fields[1], []core.Rid{core.Rid(rid)})
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%d rids", len(rids))
		show := rids
		if len(show) > 15 {
			show = show[:15]
		}
		fmt.Printf(": %v", show)
		if len(rids) > 15 {
			fmt.Print(" ...")
		}
		fmt.Println()
		if fields[0] == `\backward` {
			if rel, err := db.Gather(fields[1], show); err == nil {
				r := &core.Result{Out: rel}
				printRelation(r)
			}
		}
	default:
		fmt.Println("unknown command:", fields[0])
	}
}
